(** The XPath front-end of the planned evaluation stack.

    A path is compiled into the logical plan IR of {!Scj_plan.Plan},
    rewritten ({!Scj_plan.Planner.rewrite} — step fusion, prune hoisting,
    predicate reordering), and lowered by the cost-based planner into a
    physical operator tree that names the join backend of every
    partitioning step (serial blit staircase × skip mode, the parallel
    and paged staircase variants, the Fig.-3 B+-tree/SQL plan, MPMGJN,
    structural join, or naive region queries).  {!eval_path} executes
    that tree; {!explain}, {!plan_json} and {!analyze} render the very
    same tree, so EXPLAIN always shows what runs.

    This module keeps what is XPath-specific: the parser-facing API, the
    XPath 1.0 value model (node-set/boolean/number/string coercions and
    the core function library) that predicate closures evaluate, and the
    Ast → logical compiler.  Everything strategy-like lives in the
    planner. *)

module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Plan = Scj_plan.Plan
module Planner = Scj_plan.Planner

(** How the planner picks the join backend: [`Auto] costs every backend
    per step and takes the cheapest; [`Auto_flat] is [`Auto] with the
    dataguide disabled — cardinalities come from flat
    {!Scj_stats.Doc_stats} alone (the ablation baseline for the path
    summary); [`Force b] pins one backend for all partitioning steps
    (the §4.4 ablation harness).  [pushdown] controls the
    name-test/wildcard fragment rewrite: [`Cost_based] compares the
    fragment view size against the estimated un-pushed scan. *)
type strategy = {
  backend : [ `Auto | `Auto_flat | `Force of Plan.backend ];
  pushdown : [ `Never | `Always | `Cost_based ];
}

(** Cost-based backend choice and pushdown. *)
val default_strategy : strategy

val strategy_to_string : strategy -> string

(** CLI spellings accepted by {!strategy_of_string}: [auto], [auto-flat],
    [guide], [staircase],
    [staircase-noskip]/[-skip]/[-estimate]/[-exact], [parallel], [paged],
    [sql], [sql-nodelimiter], [mpmgjn], [structjoin], [naive]. *)
val strategy_names : string list

val strategy_of_string : string -> strategy option

(** A session owns the planner catalog for one document: memoized
    statistics, tag/element views, the B+-tree index, and the plan cache.
    [paged] attaches a buffer-pool rendition so the paged staircase
    backend becomes plannable; [domains] bounds the parallel backend;
    [guide] seeds the catalog's dataguide (e.g. one a store
    deserialized) instead of the lazy first-use build. *)
type session

val session :
  ?strategy:strategy ->
  ?paged:Scj_pager.Paged_doc.t ->
  ?domains:int ->
  ?guide:Scj_guide.Guide.t ->
  Doc.t ->
  session

val doc_of_session : session -> Doc.t

(** The planner catalog behind the session, for direct planner access. *)
val catalog_of_session : session -> Planner.t

(** The strategy the session plans under — what front-end compilers
    (e.g. {!Scj_xquery.Xq_compile}) put in plan headers and cache
    keys. *)
val strategy_of_session : session -> strategy

(** [evolve ?paged session applied] carries the session across a
    mutation: the catalog evolves incrementally ({!Planner.evolve} —
    statistics patched, B+-tree index spliced, views dropped for lazy
    rebuild) and the plan cache is discarded (cached plans close over the
    retired rendition).  [paged] attaches the new rendition's pool.
    Ownership transfer: the old session must not run queries after
    [evolve] — under snapshot isolation each reader evolves its own
    session when it adopts the new rendition. *)
val evolve : ?paged:Scj_pager.Paged_doc.t -> session -> Scj_encoding.Update.applied -> session

(** [step ?exec session context s] evaluates one axis step (node test and
    predicates included) through the planner.  The {!Scj_trace.Exec.t}
    carries the work counters and the optional tracer; when tracing is
    on, the step's operator opens one span annotated with the chosen
    backend, the pushdown decision, the partition count, the estimates
    and the in/out cardinalities. *)
val step : ?exec:Scj_trace.Exec.t -> session -> Nodeseq.t -> Ast.step -> Nodeseq.t

(** [eval_path ?exec ?context session path] plans (once, cached) and
    executes a full path.  The default context is the document root (as a
    singleton sequence); an absolute path resets the context to the root
    regardless. *)
val eval_path :
  ?exec:Scj_trace.Exec.t -> ?context:Nodeseq.t -> session -> Ast.path -> Nodeseq.t

(** [eval_query] unions the member paths' results. *)
val eval_query :
  ?exec:Scj_trace.Exec.t -> ?context:Nodeseq.t -> session -> Ast.query -> Nodeseq.t

(** [run ?exec ?context session input] parses and evaluates [input].
    Syntax errors come back as {!Scj_error.Error.Parse}. *)
val run :
  ?exec:Scj_trace.Exec.t ->
  ?context:Nodeseq.t ->
  session ->
  string ->
  (Nodeseq.t, Scj_error.Error.t) result

(** [run_exn session input] is {!run}, raising [Invalid_argument] on a
    syntax error. *)
val run_exn :
  ?exec:Scj_trace.Exec.t -> ?context:Nodeseq.t -> session -> string -> Nodeseq.t

(** {1 Plans}

    The physical plan a path will execute — the exact tree
    {!eval_path} interprets (same cache). *)

val path_plan : ?context_card:int -> session -> Ast.path -> Plan.physical

(** [explain session path] — EXPLAIN without running: the path, the
    strategy, the rewritten form (when a rewrite fired), the physical
    plan tree with per-step backend choices, pushdown decisions, cost
    estimates and rejected alternatives, and — when the whole path is
    predicate-free partitioning steps — the equivalent §2.1 SQL
    translation. *)
val explain : ?context:Nodeseq.t -> session -> Ast.path -> string

(** [plan_json session path] — the same plan as one JSON object
    ([scj plan --json]). *)
val plan_json : ?context_card:int -> session -> Ast.path -> string

(** [analyze ?context session path] is EXPLAIN ANALYZE: the path is
    planned and executed once under a fresh tracing
    {!Scj_trace.Exec.t}, and the resulting node sequence is returned
    together with the trace — one span per plan operator (nested
    predicate paths included), each carrying wall-clock time, the
    {!Scj_stats.Stats} delta of the work done inside it, and the plan
    annotations (backend, pushdown, estimates).  The span tree mirrors
    {!path_plan} one-to-one.  Render with {!Scj_trace.Trace.pp_tree} or
    serialize with {!Scj_trace.Trace.to_json}. *)
val analyze : ?context:Nodeseq.t -> session -> Ast.path -> Nodeseq.t * Scj_trace.Trace.t
