module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Axis = Scj_encoding.Axis
module Trace = Scj_trace.Trace
module Exec = Scj_trace.Exec
module Plan = Scj_plan.Plan
module Planner = Scj_plan.Planner

type strategy = {
  backend : [ `Auto | `Auto_flat | `Force of Plan.backend ];
  pushdown : [ `Never | `Always | `Cost_based ];
}

let default_strategy = { backend = `Auto; pushdown = `Cost_based }

let policy_of_strategy s =
  {
    Planner.choice =
      (match s.backend with
      | `Auto | `Auto_flat -> Planner.Auto
      | `Force b -> Planner.Force b);
    pushdown = s.pushdown;
    guide = (match s.backend with `Auto_flat -> false | `Auto | `Force _ -> true);
  }

let strategy_to_string s = Planner.policy_to_string (policy_of_strategy s)

(* The CLI / bench spellings of the forced backends. *)
let strategy_names =
  [
    "auto";
    "auto-flat";
    "guide";
    "staircase";
    "staircase-noskip";
    "staircase-skip";
    "staircase-estimate";
    "staircase-exact";
    "parallel";
    "morsel";
    "paged";
    "sql";
    "sql-nodelimiter";
    "mpmgjn";
    "structjoin";
    "naive";
  ]

let strategy_of_string name =
  let forced b = Some { default_strategy with backend = `Force b } in
  match name with
  | "auto" -> Some default_strategy
  | "auto-flat" -> Some { default_strategy with backend = `Auto_flat }
  | "guide" -> forced Plan.Guide_partition
  | "staircase" | "staircase-estimate" -> forced (Plan.Serial Exec.Estimation)
  | "staircase-noskip" -> forced (Plan.Serial Exec.No_skipping)
  | "staircase-skip" -> forced (Plan.Serial Exec.Skipping)
  | "staircase-exact" -> forced (Plan.Serial Exec.Exact_size)
  | "parallel" -> forced (Plan.Parallel Exec.Estimation)
  | "morsel" -> forced (Plan.Morsel Exec.Estimation)
  | "paged" -> forced Plan.Paged
  | "sql" -> forced (Plan.Btree { delimiter = true })
  | "sql-nodelimiter" -> forced (Plan.Btree { delimiter = false })
  | "mpmgjn" -> forced Plan.Mpmgjn
  | "structjoin" -> forced Plan.Structjoin
  | "naive" -> forced Plan.Naive
  | _ -> None

type session = {
  doc : Doc.t;
  strategy : strategy;
  catalog : Planner.t;
  plans : (Ast.path * int, Plan.physical) Hashtbl.t;
      (* planned-once cache, keyed by path and context cardinality *)
}

let session ?(strategy = default_strategy) ?paged ?domains ?guide doc =
  { doc; strategy; catalog = Planner.catalog ?paged ?domains ?guide doc; plans = Hashtbl.create 16 }

let doc_of_session s = s.doc

let catalog_of_session s = s.catalog

let strategy_of_session s = s.strategy

(* ------------------------------------------------------------------ *)
(* predicate expressions (XPath 1.0 value model)                        *)
(* ------------------------------------------------------------------ *)

type value = Nodes of Nodeseq.t | Bool of bool | Num of float | Str of string

let to_bool = function
  | Bool b -> b
  | Nodes s -> not (Nodeseq.is_empty s)
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> String.length s > 0

let number_of_string s = match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan

let to_num doc = function
  | Num f -> f
  | Bool b -> if b then 1.0 else 0.0
  | Str s -> number_of_string s
  | Nodes s -> (
    match Nodeseq.first s with None -> Float.nan | Some v -> number_of_string (Doc.string_value doc v))

(* XPath 1.0 string() conversion. *)
let to_str doc = function
  | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Num f ->
    if Float.is_nan f then "NaN"
    else if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
    else string_of_float f
  | Nodes s -> (
    match Nodeseq.first s with None -> "" | Some v -> Doc.string_value doc v)

let is_xml_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let normalize_space s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      if is_xml_space c then begin
        if Buffer.length buf > 0 then pending := true
      end
      else begin
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

(* substring(s, start, len?) with the XPath 1.0 rounding rules: positions
   are 1-based, both arguments are round()-ed, NaN bounds yield "".
   Positions are bytes, not code points — documented in the README. *)
let xpath_substring s start len =
  let n = String.length s in
  let round_half_up f = Float.round f in
  if Float.is_nan start then ""
  else begin
    let first = round_half_up start in
    let limit =
      match len with
      | None -> Float.of_int (n + 1)
      | Some l -> if Float.is_nan l then Float.neg_infinity else first +. round_half_up l
    in
    let buf = Buffer.create n in
    for p = 1 to n do
      let fp = Float.of_int p in
      if fp >= first && fp < limit then Buffer.add_char buf s.[p - 1]
    done;
    Buffer.contents buf
  end

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let starts_with ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

(* first occurrence of [sep] in [s], or None *)
let find_sub s sep =
  let n = String.length sep and h = String.length s in
  if n = 0 then None
  else
    let rec at i = if i + n > h then None else if String.sub s i n = sep then Some i else at (i + 1) in
    at 0

let substring_before s sep =
  match find_sub s sep with None -> "" | Some i -> String.sub s 0 i

let substring_after s sep =
  match find_sub s sep with
  | None -> ""
  | Some i -> String.sub s (i + String.length sep) (String.length s - i - String.length sep)

(* translate(s, from, into): map the i-th character of [from] to the i-th
   of [into]; characters of [from] without a counterpart are deleted *)
let translate s ~from ~into =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match String.index_opt from c with
      | None -> Buffer.add_char buf c
      | Some i -> if i < String.length into then Buffer.add_char buf into.[i])
    s;
  Buffer.contents buf

let local_name name =
  match String.rindex_opt name ':' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let cmp_num op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

let cmp_str op a b =
  match op with
  | Ast.Eq -> String.equal a b
  | Ast.Neq -> not (String.equal a b)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> cmp_num op (number_of_string a) (number_of_string b)

(* XPath 1.0 comparison: node-sets compare existentially. *)
let rec compare_values doc op left right =
  match (left, right) with
  | Nodes ls, Nodes rs ->
    let values s = List.map (Doc.string_value doc) (Nodeseq.to_list s) in
    let rvals = values rs in
    List.exists (fun l -> List.exists (fun r -> cmp_str op l r) rvals) (values ls)
  | Nodes ls, other ->
    List.exists
      (fun v -> compare_values doc op (Str (Doc.string_value doc v)) other)
      (Nodeseq.to_list ls)
  | other, Nodes rs ->
    List.exists
      (fun v -> compare_values doc op other (Str (Doc.string_value doc v)))
      (Nodeseq.to_list rs)
  | (Bool _, _ | _, Bool _) when op = Ast.Eq || op = Ast.Neq ->
    cmp_num op (to_num doc left) (to_num doc right)
  | (Num _, _ | _, Num _) -> cmp_num op (to_num doc left) (to_num doc right)
  | Str a, Str b -> cmp_str op a b
  | (Bool _ | Str _), (Bool _ | Str _) -> cmp_num op (to_num doc left) (to_num doc right)

(* ------------------------------------------------------------------ *)
(* compilation: Ast → logical plan                                      *)
(* ------------------------------------------------------------------ *)

let compile_test = function
  | Ast.Name_test n -> Plan.Name n
  | Ast.Wildcard -> Plan.Wildcard
  | Ast.Kind_test Ast.Any_node -> Plan.Any_node
  | Ast.Kind_test Ast.Text_node -> Plan.Text_node
  | Ast.Kind_test Ast.Comment_node -> Plan.Comment_node
  | Ast.Kind_test (Ast.Pi_node t) -> Plan.Pi_node t

(* Predicate reordering key: embedded path steps dominate the cost of a
   predicate, everything else is cheap value arithmetic. *)
let rec expr_rank = function
  | Ast.Path_expr p | Ast.Count p | Ast.Fn_sum p -> List.length p.Ast.steps
  | Ast.Fn_name (Some p) | Ast.Fn_local_name (Some p) -> List.length p.Ast.steps
  | Ast.Fn_name None | Ast.Fn_local_name None -> 0
  | Ast.Literal _ | Ast.Number _ | Ast.Position | Ast.Last | Ast.Fn_true | Ast.Fn_false -> 0
  | Ast.Not e | Ast.Fn_boolean e | Ast.Fn_floor e | Ast.Fn_ceiling e | Ast.Fn_round e ->
    expr_rank e
  | Ast.Fn_string e | Ast.Fn_number e | Ast.Fn_string_length e | Ast.Fn_normalize_space e -> (
    match e with None -> 0 | Some e -> expr_rank e)
  | Ast.And (a, b)
  | Ast.Or (a, b)
  | Ast.Compare (_, a, b)
  | Ast.Fn_contains (a, b)
  | Ast.Fn_starts_with (a, b)
  | Ast.Fn_substring_before (a, b)
  | Ast.Fn_substring_after (a, b) ->
    expr_rank a + expr_rank b
  | Ast.Fn_concat es -> List.fold_left (fun acc e -> acc + expr_rank e) 0 es
  | Ast.Fn_substring (a, b, c) ->
    expr_rank a + expr_rank b + (match c with None -> 0 | Some c -> expr_rank c)
  | Ast.Fn_translate (a, b, c) -> expr_rank a + expr_rank b + expr_rank c

(* ------------------------------------------------------------------ *)
(* evaluation                                                           *)
(* ------------------------------------------------------------------ *)

let rec eval_expr session exec ~node ~pos ~last = function
  | Ast.Literal s -> Str s
  | Ast.Number f -> Num f
  | Ast.Position -> Num (float_of_int pos)
  | Ast.Last -> Num (float_of_int last)
  | Ast.Path_expr p -> Nodes (eval_path_inner session exec (Nodeseq.singleton node) p)
  | Ast.Count p -> Num (float_of_int (Nodeseq.length (eval_path_inner session exec (Nodeseq.singleton node) p)))
  | Ast.Not e -> Bool (not (to_bool (eval_expr session exec ~node ~pos ~last e)))
  | Ast.And (a, b) ->
    Bool
      (to_bool (eval_expr session exec ~node ~pos ~last a)
      && to_bool (eval_expr session exec ~node ~pos ~last b))
  | Ast.Or (a, b) ->
    Bool
      (to_bool (eval_expr session exec ~node ~pos ~last a)
      || to_bool (eval_expr session exec ~node ~pos ~last b))
  | Ast.Compare (op, a, b) ->
    let va = eval_expr session exec ~node ~pos ~last a in
    let vb = eval_expr session exec ~node ~pos ~last b in
    Bool (compare_values session.doc op va vb)
  | Ast.Fn_true -> Bool true
  | Ast.Fn_false -> Bool false
  | Ast.Fn_boolean e -> Bool (to_bool (eval_expr session exec ~node ~pos ~last e))
  | Ast.Fn_string e -> (
    match e with
    | None -> Str (Doc.string_value session.doc node)
    | Some e -> Str (to_str session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_number e -> (
    match e with
    | None -> Num (number_of_string (Doc.string_value session.doc node))
    | Some e -> Num (to_num session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_name p -> Str (name_of_path session exec ~node p ~local:false)
  | Ast.Fn_local_name p -> Str (name_of_path session exec ~node p ~local:true)
  | Ast.Fn_concat es ->
    Str
      (String.concat ""
         (List.map (fun e -> to_str session.doc (eval_expr session exec ~node ~pos ~last e)) es))
  | Ast.Fn_contains (a, b) ->
    let ha = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let ne = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Bool (string_contains ~needle:ne ha)
  | Ast.Fn_starts_with (a, b) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let prefix = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Bool (starts_with ~prefix s)
  | Ast.Fn_substring (a, b, c) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let start = to_num session.doc (eval_expr session exec ~node ~pos ~last b) in
    let len =
      Option.map (fun e -> to_num session.doc (eval_expr session exec ~node ~pos ~last e)) c
    in
    Str (xpath_substring s start len)
  | Ast.Fn_substring_before (a, b) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let sep = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Str (substring_before s sep)
  | Ast.Fn_substring_after (a, b) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let sep = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Str (substring_after s sep)
  | Ast.Fn_translate (a, b, c) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let from = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    let into = to_str session.doc (eval_expr session exec ~node ~pos ~last c) in
    Str (translate s ~from ~into)
  | Ast.Fn_string_length e ->
    let s =
      match e with
      | None -> Doc.string_value session.doc node
      | Some e -> to_str session.doc (eval_expr session exec ~node ~pos ~last e)
    in
    Num (float_of_int (String.length s))
  | Ast.Fn_normalize_space e ->
    let s =
      match e with
      | None -> Doc.string_value session.doc node
      | Some e -> to_str session.doc (eval_expr session exec ~node ~pos ~last e)
    in
    Str (normalize_space s)
  | Ast.Fn_sum p ->
    let nodes = eval_path_inner session exec (Nodeseq.singleton node) p in
    Num
      (Nodeseq.fold_left
         (fun acc v -> acc +. number_of_string (Doc.string_value session.doc v))
         0.0 nodes)
  | Ast.Fn_floor e -> Num (Float.floor (to_num session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_ceiling e ->
    Num (Float.ceil (to_num session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_round e ->
    (* XPath round(): half goes toward positive infinity *)
    Num (Float.floor (to_num session.doc (eval_expr session exec ~node ~pos ~last e) +. 0.5))

and name_of_path session exec ~node p ~local =
  let target =
    match p with
    | None -> Some node
    | Some p -> Nodeseq.first (eval_path_inner session exec (Nodeseq.singleton node) p)
  in
  match target with
  | None -> ""
  | Some v -> (
    match Doc.tag_name session.doc v with
    | None -> ""
    | Some name -> if local then local_name name else name)

(* Predicate truth: a numeric predicate value means position() = value. *)
and predicate_holds session exec ~node ~pos ~last expr =
  match eval_expr session exec ~node ~pos ~last expr with
  | Num f -> float_of_int pos = f
  | (Bool _ | Str _ | Nodes _) as v -> to_bool v

and compile_predicate session e =
  {
    Plan.label = Format.asprintf "%a" Ast.pp_expr e;
    positional = Ast.positional e;
    rank = expr_rank e;
    eval = (fun exec ~node ~pos ~last -> predicate_holds session exec ~node ~pos ~last e);
  }

and compile_step session (s : Ast.step) =
  {
    Plan.axis = s.Ast.axis;
    test = compile_test s.Ast.test;
    predicates = List.map (compile_predicate session) s.Ast.predicates;
  }

and compile_path session (p : Ast.path) =
  let base = if p.Ast.absolute then Plan.L_source Plan.Document else Plan.L_source Plan.Context in
  List.fold_left (fun acc s -> Plan.L_step (acc, compile_step session s)) base p.Ast.steps

(* compile → rewrite → plan, cached per (path, context cardinality) *)
and plan_of_path session (p : Ast.path) ~context_card =
  let context_card = if p.Ast.absolute then 1 else context_card in
  let key = (p, context_card) in
  match Hashtbl.find_opt session.plans key with
  | Some phys -> phys
  | None ->
    let logical = Planner.rewrite (compile_path session p) in
    let phys =
      Planner.plan session.catalog (policy_of_strategy session.strategy) ~context_card logical
    in
    Hashtbl.add session.plans key phys;
    phys

and eval_path_inner session exec context (p : Ast.path) =
  let phys = plan_of_path session p ~context_card:(Nodeseq.length context) in
  Planner.execute session.catalog exec ~context phys

let ensure_exec = function None -> Exec.make () | Some e -> e

(* One axis step (node test and predicates included) — planned like a
   single-step relative path, without the chain rewrites. *)
let step ?exec session context (s : Ast.step) =
  let exec = ensure_exec exec in
  let logical = Plan.L_step (Plan.L_source Plan.Context, compile_step session s) in
  let phys =
    Planner.plan session.catalog
      (policy_of_strategy session.strategy)
      ~context_card:(Nodeseq.length context) logical
  in
  Planner.execute session.catalog exec ~context phys

let default_context session = Nodeseq.singleton (Doc.root session.doc)

let eval_path ?exec ?context session p =
  let context = match context with Some c -> c | None -> default_context session in
  eval_path_inner session (ensure_exec exec) context p

let eval_query ?exec ?context session q =
  let exec = ensure_exec exec in
  let context = match context with Some c -> c | None -> default_context session in
  List.fold_left
    (fun acc p -> Nodeseq.union acc (eval_path_inner session exec context p))
    Nodeseq.empty q

(* ------------------------------------------------------------------ *)
(* plan rendering                                                       *)
(* ------------------------------------------------------------------ *)

let path_plan ?(context_card = 1) session p = plan_of_path session p ~context_card

(* The logical chain, when the plan is one (for the SQL appendix). *)
let rec logical_chain = function
  | Plan.L_source src -> Some (src, [])
  | Plan.L_step (input, s) -> (
    match logical_chain input with
    | Some (src, steps) -> Some (src, steps @ [ s ])
    | None -> None)
  | Plan.L_union _ -> None

(* the pure-SQL rendition of §2.1, when the (rewritten) path consists of
   predicate-free partitioning steps *)
let sql_appendix rewritten =
  match logical_chain rewritten with
  | None | Some (_, []) -> None
  | Some (_, steps) ->
    let sql_steps =
      List.map
        (fun (s : Plan.step) ->
          let name_test =
            match s.Plan.test with
            | Plan.Name tag -> Some (Some tag)
            | Plan.Any_node -> Some None
            | Plan.Wildcard | Plan.Text_node | Plan.Comment_node | Plan.Pi_node _ -> None
          in
          match (s.Plan.axis, name_test, s.Plan.predicates) with
          | Axis.Descendant, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Descendant; name_test = nt }
          | Axis.Ancestor, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Ancestor; name_test = nt }
          | Axis.Following, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Following; name_test = nt }
          | Axis.Preceding, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Preceding; name_test = nt }
          | _, _, _ -> None)
        steps
    in
    if List.for_all Option.is_some sql_steps then
      Some (Scj_engine.Sqlgen.of_steps (List.filter_map Fun.id sql_steps))
    else None

let plan_header ?context_card session p out =
  out (Printf.sprintf "path: %s\n" (Ast.path_to_string p));
  out (Printf.sprintf "strategy: %s\n" (strategy_to_string session.strategy));
  let logical = compile_path session p in
  let rewritten = Planner.rewrite logical in
  let before = Plan.logical_to_string logical in
  let after = Plan.logical_to_string rewritten in
  if not (String.equal before after) then out (Printf.sprintf "rewritten: %s\n" after);
  let context_card =
    if p.Ast.absolute then 1 else match context_card with Some c -> c | None -> 1
  in
  (rewritten, Planner.plan session.catalog (policy_of_strategy session.strategy) ~context_card rewritten)

let explain ?context session (p : Ast.path) =
  let buf = Buffer.create 512 in
  let out = Buffer.add_string buf in
  let context_card = Option.map Nodeseq.length context in
  let rewritten, phys = plan_header ?context_card session p out in
  out "plan:\n";
  String.split_on_char '\n' (Plan.physical_to_string phys)
  |> List.iter (fun line -> if line <> "" then out ("  " ^ line ^ "\n"));
  (match sql_appendix rewritten with
  | Some sql -> out (Printf.sprintf "\nequivalent pure-SQL translation (§2.1):\n%s\n" sql)
  | None -> ());
  Buffer.contents buf

let plan_json ?context_card session (p : Ast.path) =
  let phys =
    plan_of_path session p ~context_card:(match context_card with Some c -> c | None -> 1)
  in
  let guide_section =
    let enabled = match session.strategy.backend with `Auto_flat -> false | `Auto | `Force _ -> true in
    let notes =
      Plan.physical_guide_notes phys
      |> List.map (fun (step, note) ->
             Printf.sprintf "{\"step\":\"%s\",\"note\":\"%s\"}" (Trace.json_escape step)
               (Trace.json_escape note))
      |> String.concat ","
    in
    Printf.sprintf "{\"enabled\":%b,\"steps\":[%s]}" enabled notes
  in
  Printf.sprintf "{\"query\":\"%s\",\"strategy\":\"%s\",\"guide\":%s,\"plan\":%s}"
    (Trace.json_escape (Ast.path_to_string p))
    (Trace.json_escape (strategy_to_string session.strategy))
    guide_section (Plan.physical_to_json phys)

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

let analyze ?context session (p : Ast.path) =
  let exec = Exec.traced () in
  let trace = match exec.Exec.trace with Some tr -> tr | None -> assert false in
  let context = match context with Some c -> c | None -> default_context session in
  let result =
    Exec.span exec
      ("query: " ^ Ast.path_to_string p)
      (fun () ->
        Exec.annot exec "strategy" (strategy_to_string session.strategy);
        let logical = compile_path session p in
        let rewritten = Planner.rewrite logical in
        let before = Plan.logical_to_string logical in
        let after = Plan.logical_to_string rewritten in
        if not (String.equal before after) then Exec.annot exec "rewritten" after;
        let phys =
          Planner.plan session.catalog
            (policy_of_strategy session.strategy)
            ~context_card:(Nodeseq.length context) rewritten
        in
        Planner.execute session.catalog exec ~context phys)
  in
  (result, trace)

let run ?exec ?context session input =
  match Parse.query input with
  | Ok q -> Ok (eval_query ?exec ?context session q)
  | Error e -> Error (Scj_error.Error.Parse e)

let run_exn ?exec ?context session input =
  match run ?exec ?context session input with
  | Ok r -> r
  | Error e -> invalid_arg ("Eval.run_exn: " ^ Scj_error.Error.to_string e)

(* Carrying a session across a mutation: the catalog evolves (statistics
   patched, B+-tree index spliced — see Planner.evolve) and the plan
   cache drops, because cached physical plans hold predicate closures
   over the retired rendition.  The old session must not run queries
   afterwards — its catalog's index now describes the new rendition. *)
let evolve ?paged session (applied : Scj_encoding.Update.applied) =
  let doc = applied.Scj_encoding.Update.doc in
  {
    doc;
    strategy = session.strategy;
    catalog =
      Planner.evolve ?paged session.catalog ~doc ~splice:applied.Scj_encoding.Update.splice
        ~delta:applied.Scj_encoding.Update.delta;
    plans = Hashtbl.create 16;
  }
