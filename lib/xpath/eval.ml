module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Axis = Scj_encoding.Axis
module Int_col = Scj_bat.Int_col
module Stats = Scj_stats.Stats
module Trace = Scj_trace.Trace
module Exec = Scj_trace.Exec
module Sj = Scj_core.Staircase
module Naive = Scj_engine.Naive
module Sql_plan = Scj_engine.Sql_plan
module Mpmgjn = Scj_engine.Mpmgjn
module Structjoin = Scj_engine.Structjoin

type algorithm =
  | Staircase of Sj.skip_mode
  | Naive
  | Sql of { delimiter : bool }
  | Mpmgjn
  | Structjoin

type pushdown = [ `Never | `Always | `Cost_based ]

type strategy = { algorithm : algorithm; pushdown : pushdown }

let default_strategy = { algorithm = Staircase Sj.Estimation; pushdown = `Cost_based }

let algorithm_to_string = function
  | Staircase mode -> "staircase/" ^ Sj.skip_mode_to_string mode
  | Naive -> "naive"
  | Sql { delimiter } -> if delimiter then "sql+delimiter" else "sql"
  | Mpmgjn -> "mpmgjn"
  | Structjoin -> "structjoin"

let strategy_to_string s =
  let pd =
    match s.pushdown with `Never -> "never" | `Always -> "always" | `Cost_based -> "cost"
  in
  Printf.sprintf "%s(pushdown=%s)" (algorithm_to_string s.algorithm) pd

type session = {
  doc : Doc.t;
  strategy : strategy;
  mutable sql_index : Sql_plan.index option;
  views : (string, Sj.View.t) Hashtbl.t;
}

let session ?(strategy = default_strategy) doc =
  { doc; strategy; sql_index = None; views = Hashtbl.create 16 }

let doc_of_session s = s.doc

let sql_index session =
  match session.sql_index with
  | Some idx -> idx
  | None ->
    let idx = Sql_plan.build_index session.doc in
    session.sql_index <- Some idx;
    idx

(* Element-only view of a tag name (the principal node kind of name tests
   on non-attribute axes). *)
let tag_view session name =
  match Hashtbl.find_opt session.views name with
  | Some v -> v
  | None ->
    let doc = session.doc in
    let positions = Doc.tag_positions doc name in
    let kinds = Doc.kind_array doc in
    let elements = Array.of_seq (Seq.filter (fun p -> kinds.(p) = Doc.Element) (Array.to_seq positions)) in
    let view = Sj.View.of_nodeseq doc (Nodeseq.of_sorted_array elements) in
    Hashtbl.add session.views name view;
    view

(* ------------------------------------------------------------------ *)
(* cost model                                                           *)
(* ------------------------------------------------------------------ *)

let estimated_step_touches session context direction =
  let doc = session.doc in
  match direction with
  | `Descendant ->
    (* pruned subtrees are disjoint, so the Equation-(1) sizes sum to the
       exact number of nodes the un-pushed join touches *)
    let pruned = Sj.prune_desc doc context in
    Nodeseq.fold_left (fun acc c -> acc + Doc.size doc c) 0 pruned
  | `Ancestor ->
    let pruned = Sj.prune_anc doc context in
    Nodeseq.fold_left (fun acc c -> acc + Doc.level doc c) 0 pruned

let decide_pushdown session context direction ~tag =
  let view = tag_view session tag in
  Sj.View.length view < estimated_step_touches session context direction

(* ------------------------------------------------------------------ *)
(* axis evaluation                                                      *)
(* ------------------------------------------------------------------ *)

(* Walk the element children of [c] (attributes skipped) using subtree
   sizes: first child of c sits at c+1, siblings hop by size+1. *)
let iter_children doc stats c f =
  let sizes = Doc.size_array doc in
  let kinds = Doc.kind_array doc in
  let stop = c + sizes.(c) in
  let i = ref (c + 1) in
  while !i <= stop do
    stats.Stats.scanned <- stats.Stats.scanned + 1;
    if kinds.(!i) <> Doc.Attribute then f !i;
    i := !i + sizes.(!i) + 1
  done

let structural_axis session exec context axis =
  let doc = session.doc in
  let stats = exec.Exec.stats in
  let sizes = Doc.size_array doc in
  let kinds = Doc.kind_array doc in
  let parents = Doc.parent_array doc in
  let hits = Int_col.create ~capacity:32 () in
  let collect c =
    match axis with
    | Axis.Child -> iter_children doc stats c (Int_col.append_unit hits)
    | Axis.Attribute ->
      let i = ref (c + 1) in
      while !i < Doc.n_nodes doc && kinds.(!i) = Doc.Attribute && parents.(!i) = c do
        stats.Stats.scanned <- stats.Stats.scanned + 1;
        Int_col.append_unit hits !i;
        incr i
      done
    | Axis.Parent -> if parents.(c) >= 0 then Int_col.append_unit hits parents.(c)
    | Axis.Following_sibling ->
      let p = parents.(c) in
      if p >= 0 then begin
        let stop = p + sizes.(p) in
        let i = ref (c + sizes.(c) + 1) in
        while !i <= stop do
          stats.Stats.scanned <- stats.Stats.scanned + 1;
          if kinds.(!i) <> Doc.Attribute then Int_col.append_unit hits !i;
          i := !i + sizes.(!i) + 1
        done
      end
    | Axis.Preceding_sibling ->
      let p = parents.(c) in
      if p >= 0 then
        iter_children doc stats p (fun v -> if v < c then Int_col.append_unit hits v)
    | Axis.Ancestor | Axis.Ancestor_or_self | Axis.Descendant | Axis.Descendant_or_self
    | Axis.Following | Axis.Namespace | Axis.Preceding | Axis.Self ->
      assert false
  in
  Nodeseq.iter collect context;
  (* sibling/child sets of distinct context nodes are disjoint, but they
     interleave when context nodes are nested — sort once *)
  Nodeseq.of_unsorted (Int_col.to_list hits)

(* Partitioning-axis dispatch.  Returns the node sequence plus a flag
   telling the caller that a name test was already applied (pushdown). *)
let partitioning_axis session exec context axis test =
  let doc = session.doc in
  let direction =
    match axis with
    | Axis.Descendant -> Some `Descendant
    | Axis.Ancestor -> Some `Ancestor
    | Axis.Following | Axis.Preceding | Axis.Ancestor_or_self | Axis.Attribute | Axis.Child
    | Axis.Descendant_or_self | Axis.Following_sibling | Axis.Namespace | Axis.Parent
    | Axis.Preceding_sibling | Axis.Self ->
      None
  in
  (if Exec.tracing exec then
     match (axis, session.strategy.algorithm) with
     | (Axis.Descendant | Axis.Ancestor), Staircase _ ->
       () (* annotated below, with partitions and the pushdown decision *)
     | (Axis.Descendant | Axis.Ancestor), alg -> Exec.annot exec "algorithm" (algorithm_to_string alg)
     | (Axis.Following | Axis.Preceding), Naive -> Exec.annot exec "algorithm" "naive"
     | (Axis.Following | Axis.Preceding), (Staircase _ | Sql _ | Mpmgjn | Structjoin) ->
       Exec.annot exec "algorithm" "pruned single region query (§3.1)"
     | ( ( Axis.Ancestor_or_self | Axis.Attribute | Axis.Child | Axis.Descendant_or_self
         | Axis.Following_sibling | Axis.Namespace | Axis.Parent | Axis.Preceding_sibling
         | Axis.Self ),
         _ ) ->
       ());
  match (axis, session.strategy.algorithm) with
  | (Axis.Descendant | Axis.Ancestor), Staircase mode -> (
    let direction = Option.get direction in
    let pushdown_tag =
      match (test, session.strategy.pushdown) with
      | Ast.Name_test tag, `Always -> Some tag
      | Ast.Name_test tag, `Cost_based when decide_pushdown session context direction ~tag ->
        Some tag
      | (Ast.Name_test _ | Ast.Wildcard | Ast.Kind_test _), (`Never | `Always | `Cost_based) ->
        None
    in
    if Exec.tracing exec then begin
      Exec.annot exec "algorithm" ("staircase join (" ^ Sj.skip_mode_to_string mode ^ ")");
      let partitions =
        match direction with
        | `Descendant -> Sj.desc_partitions doc context
        | `Ancestor -> Sj.anc_partitions doc context
      in
      Exec.annot exec "partitions" (string_of_int (List.length partitions));
      match (test, session.strategy.pushdown) with
      | Ast.Name_test tag, (`Always | `Cost_based) ->
        let fragment = Sj.View.length (tag_view session tag) in
        let estimate = estimated_step_touches session context direction in
        Exec.annot exec "cost"
          (Printf.sprintf "tag fragment '%s': %d node(s) vs. estimated scan of %d node(s)" tag
             fragment estimate);
        Exec.annot exec "pushdown"
          (match pushdown_tag with
          | Some _ -> "yes (join over the tag fragment)"
          | None -> "no (filter after the join)")
      | Ast.Name_test _, `Never -> Exec.annot exec "pushdown" "no (disabled)"
      | (Ast.Wildcard | Ast.Kind_test _), (`Never | `Always | `Cost_based) -> ()
    end;
    match (direction, pushdown_tag) with
    | `Descendant, None -> (Sj.desc ~exec:(Exec.with_mode exec mode) doc context, false)
    | `Ancestor, None -> (Sj.anc ~exec:(Exec.with_mode exec mode) doc context, false)
    | `Descendant, Some tag ->
      (Sj.desc_view ~exec:(Exec.with_mode exec mode) doc (tag_view session tag) context, true)
    | `Ancestor, Some tag ->
      (Sj.anc_view ~exec:(Exec.with_mode exec mode) doc (tag_view session tag) context, true))
  | Axis.Descendant, Naive -> (Naive.step ~exec doc context Axis.Descendant, false)
  | Axis.Ancestor, Naive -> (Naive.step ~exec doc context Axis.Ancestor, false)
  | (Axis.Descendant | Axis.Ancestor), Sql { delimiter } ->
    let options = { Sql_plan.delimiter; early_nametest = None } in
    let dir = if axis = Axis.Descendant then `Descendant else `Ancestor in
    (Sql_plan.step ~exec ~options (sql_index session) doc context dir, false)
  | Axis.Descendant, Mpmgjn -> (Mpmgjn.desc ~exec doc context, false)
  | Axis.Ancestor, Mpmgjn -> (Mpmgjn.anc ~exec doc context, false)
  | Axis.Descendant, Structjoin -> (Structjoin.desc ~exec doc context, false)
  | Axis.Ancestor, Structjoin -> (Structjoin.anc ~exec doc context, false)
  | Axis.Following, Naive -> (Naive.step ~exec doc context Axis.Following, false)
  | Axis.Preceding, Naive -> (Naive.step ~exec doc context Axis.Preceding, false)
  | Axis.Following, (Staircase _ | Sql _ | Mpmgjn | Structjoin) ->
    (* the baselines of §4.4 are descendant/ancestor algorithms; the
       degenerate single region query serves every strategy here *)
    (Sj.following ~exec doc context, false)
  | Axis.Preceding, (Staircase _ | Sql _ | Mpmgjn | Structjoin) ->
    (Sj.preceding ~exec doc context, false)
  | ( ( Axis.Ancestor_or_self | Axis.Attribute | Axis.Child | Axis.Descendant_or_self
      | Axis.Following_sibling | Axis.Namespace | Axis.Parent | Axis.Preceding_sibling
      | Axis.Self ),
      _ ) ->
    assert false

(* ------------------------------------------------------------------ *)
(* node tests                                                           *)
(* ------------------------------------------------------------------ *)

let apply_node_test doc axis test nodes =
  let principal = if axis = Axis.Attribute then Doc.Attribute else Doc.Element in
  let kinds = Doc.kind_array doc in
  match test with
  | Ast.Kind_test Ast.Any_node -> nodes
  | Ast.Wildcard -> Nodeseq.filter (fun v -> kinds.(v) = principal) nodes
  | Ast.Name_test name -> (
    match Doc.tag_symbol doc name with
    | None -> Nodeseq.empty
    | Some sym -> Nodeseq.filter (fun v -> kinds.(v) = principal && Doc.tag doc v = sym) nodes)
  | Ast.Kind_test Ast.Text_node -> Nodeseq.filter (fun v -> kinds.(v) = Doc.Text) nodes
  | Ast.Kind_test Ast.Comment_node -> Nodeseq.filter (fun v -> kinds.(v) = Doc.Comment) nodes
  | Ast.Kind_test (Ast.Pi_node target) ->
    Nodeseq.filter
      (fun v ->
        kinds.(v) = Doc.Pi
        &&
        match target with
        | None -> true
        | Some t -> ( match Doc.tag_name doc v with Some name -> String.equal name t | None -> false))
      nodes

let eval_axis session exec context axis test =
  match axis with
  | Axis.Descendant | Axis.Ancestor | Axis.Following | Axis.Preceding ->
    partitioning_axis session exec context axis test
  | Axis.Descendant_or_self ->
    (* desc-or-self::T = desc::T ∪ self::T — passing the test through
       keeps name-test pushdown available for the descendant part *)
    let desc, tested = partitioning_axis session exec context Axis.Descendant test in
    let self =
      if tested then apply_node_test session.doc Axis.Descendant_or_self test context
      else context
    in
    (Nodeseq.union desc self, tested)
  | Axis.Ancestor_or_self ->
    let anc, tested = partitioning_axis session exec context Axis.Ancestor test in
    let self =
      if tested then apply_node_test session.doc Axis.Ancestor_or_self test context else context
    in
    (Nodeseq.union anc self, tested)
  | Axis.Self -> (context, false)
  | Axis.Namespace -> (Nodeseq.empty, false)
  | Axis.Child | Axis.Attribute | Axis.Parent | Axis.Following_sibling | Axis.Preceding_sibling
    ->
    if Exec.tracing exec then Exec.annot exec "algorithm" "structural size/parent arithmetic";
    (structural_axis session exec context axis, false)

let reverse_axis = function
  | Axis.Ancestor | Axis.Ancestor_or_self | Axis.Preceding | Axis.Preceding_sibling | Axis.Parent
    ->
    true
  | Axis.Attribute | Axis.Child | Axis.Descendant | Axis.Descendant_or_self | Axis.Following
  | Axis.Following_sibling | Axis.Namespace | Axis.Self ->
    false

(* ------------------------------------------------------------------ *)
(* predicate expressions (XPath 1.0 value model)                        *)
(* ------------------------------------------------------------------ *)

type value = Nodes of Nodeseq.t | Bool of bool | Num of float | Str of string

let to_bool = function
  | Bool b -> b
  | Nodes s -> not (Nodeseq.is_empty s)
  | Num f -> f <> 0.0 && not (Float.is_nan f)
  | Str s -> String.length s > 0

let number_of_string s = match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan

let to_num doc = function
  | Num f -> f
  | Bool b -> if b then 1.0 else 0.0
  | Str s -> number_of_string s
  | Nodes s -> (
    match Nodeseq.first s with None -> Float.nan | Some v -> number_of_string (Doc.string_value doc v))

(* XPath 1.0 string() conversion. *)
let to_str doc = function
  | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Num f ->
    if Float.is_nan f then "NaN"
    else if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
    else string_of_float f
  | Nodes s -> (
    match Nodeseq.first s with None -> "" | Some v -> Doc.string_value doc v)

let is_xml_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let normalize_space s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun c ->
      if is_xml_space c then begin
        if Buffer.length buf > 0 then pending := true
      end
      else begin
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

(* substring(s, start, len?) with the XPath 1.0 rounding rules: positions
   are 1-based, both arguments are round()-ed, NaN bounds yield "".
   Positions are bytes, not code points — documented in the README. *)
let xpath_substring s start len =
  let n = String.length s in
  let round_half_up f = Float.round f in
  if Float.is_nan start then ""
  else begin
    let first = round_half_up start in
    let limit =
      match len with
      | None -> Float.of_int (n + 1)
      | Some l -> if Float.is_nan l then Float.neg_infinity else first +. round_half_up l
    in
    let buf = Buffer.create n in
    for p = 1 to n do
      let fp = Float.of_int p in
      if fp >= first && fp < limit then Buffer.add_char buf s.[p - 1]
    done;
    Buffer.contents buf
  end

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let starts_with ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

(* first occurrence of [sep] in [s], or None *)
let find_sub s sep =
  let n = String.length sep and h = String.length s in
  if n = 0 then None
  else
    let rec at i = if i + n > h then None else if String.sub s i n = sep then Some i else at (i + 1) in
    at 0

let substring_before s sep =
  match find_sub s sep with None -> "" | Some i -> String.sub s 0 i

let substring_after s sep =
  match find_sub s sep with
  | None -> ""
  | Some i -> String.sub s (i + String.length sep) (String.length s - i - String.length sep)

(* translate(s, from, into): map the i-th character of [from] to the i-th
   of [into]; characters of [from] without a counterpart are deleted *)
let translate s ~from ~into =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match String.index_opt from c with
      | None -> Buffer.add_char buf c
      | Some i -> if i < String.length into then Buffer.add_char buf into.[i])
    s;
  Buffer.contents buf

let local_name name =
  match String.rindex_opt name ':' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let cmp_num op a b =
  match op with
  | Ast.Eq -> a = b
  | Ast.Neq -> a <> b
  | Ast.Lt -> a < b
  | Ast.Le -> a <= b
  | Ast.Gt -> a > b
  | Ast.Ge -> a >= b

let cmp_str op a b =
  match op with
  | Ast.Eq -> String.equal a b
  | Ast.Neq -> not (String.equal a b)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> cmp_num op (number_of_string a) (number_of_string b)

(* XPath 1.0 comparison: node-sets compare existentially. *)
let rec compare_values doc op left right =
  match (left, right) with
  | Nodes ls, Nodes rs ->
    let values s = List.map (Doc.string_value doc) (Nodeseq.to_list s) in
    let rvals = values rs in
    List.exists (fun l -> List.exists (fun r -> cmp_str op l r) rvals) (values ls)
  | Nodes ls, other ->
    List.exists
      (fun v -> compare_values doc op (Str (Doc.string_value doc v)) other)
      (Nodeseq.to_list ls)
  | other, Nodes rs ->
    List.exists
      (fun v -> compare_values doc op other (Str (Doc.string_value doc v)))
      (Nodeseq.to_list rs)
  | (Bool _, _ | _, Bool _) when op = Ast.Eq || op = Ast.Neq ->
    cmp_num op (to_num doc left) (to_num doc right)
  | (Num _, _ | _, Num _) -> cmp_num op (to_num doc left) (to_num doc right)
  | Str a, Str b -> cmp_str op a b
  | (Bool _ | Str _), (Bool _ | Str _) -> cmp_num op (to_num doc left) (to_num doc right)

(* ------------------------------------------------------------------ *)
(* full path evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let rec eval_expr session exec ~node ~pos ~last = function
  | Ast.Literal s -> Str s
  | Ast.Number f -> Num f
  | Ast.Position -> Num (float_of_int pos)
  | Ast.Last -> Num (float_of_int last)
  | Ast.Path_expr p -> Nodes (eval_path_inner session exec (Nodeseq.singleton node) p)
  | Ast.Count p -> Num (float_of_int (Nodeseq.length (eval_path_inner session exec (Nodeseq.singleton node) p)))
  | Ast.Not e -> Bool (not (to_bool (eval_expr session exec ~node ~pos ~last e)))
  | Ast.And (a, b) ->
    Bool
      (to_bool (eval_expr session exec ~node ~pos ~last a)
      && to_bool (eval_expr session exec ~node ~pos ~last b))
  | Ast.Or (a, b) ->
    Bool
      (to_bool (eval_expr session exec ~node ~pos ~last a)
      || to_bool (eval_expr session exec ~node ~pos ~last b))
  | Ast.Compare (op, a, b) ->
    let va = eval_expr session exec ~node ~pos ~last a in
    let vb = eval_expr session exec ~node ~pos ~last b in
    Bool (compare_values session.doc op va vb)
  | Ast.Fn_true -> Bool true
  | Ast.Fn_false -> Bool false
  | Ast.Fn_boolean e -> Bool (to_bool (eval_expr session exec ~node ~pos ~last e))
  | Ast.Fn_string e -> (
    match e with
    | None -> Str (Doc.string_value session.doc node)
    | Some e -> Str (to_str session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_number e -> (
    match e with
    | None -> Num (number_of_string (Doc.string_value session.doc node))
    | Some e -> Num (to_num session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_name p -> Str (name_of_path session exec ~node p ~local:false)
  | Ast.Fn_local_name p -> Str (name_of_path session exec ~node p ~local:true)
  | Ast.Fn_concat es ->
    Str
      (String.concat ""
         (List.map (fun e -> to_str session.doc (eval_expr session exec ~node ~pos ~last e)) es))
  | Ast.Fn_contains (a, b) ->
    let ha = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let ne = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Bool (string_contains ~needle:ne ha)
  | Ast.Fn_starts_with (a, b) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let prefix = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Bool (starts_with ~prefix s)
  | Ast.Fn_substring (a, b, c) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let start = to_num session.doc (eval_expr session exec ~node ~pos ~last b) in
    let len =
      Option.map (fun e -> to_num session.doc (eval_expr session exec ~node ~pos ~last e)) c
    in
    Str (xpath_substring s start len)
  | Ast.Fn_substring_before (a, b) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let sep = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Str (substring_before s sep)
  | Ast.Fn_substring_after (a, b) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let sep = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    Str (substring_after s sep)
  | Ast.Fn_translate (a, b, c) ->
    let s = to_str session.doc (eval_expr session exec ~node ~pos ~last a) in
    let from = to_str session.doc (eval_expr session exec ~node ~pos ~last b) in
    let into = to_str session.doc (eval_expr session exec ~node ~pos ~last c) in
    Str (translate s ~from ~into)
  | Ast.Fn_string_length e ->
    let s =
      match e with
      | None -> Doc.string_value session.doc node
      | Some e -> to_str session.doc (eval_expr session exec ~node ~pos ~last e)
    in
    Num (float_of_int (String.length s))
  | Ast.Fn_normalize_space e ->
    let s =
      match e with
      | None -> Doc.string_value session.doc node
      | Some e -> to_str session.doc (eval_expr session exec ~node ~pos ~last e)
    in
    Str (normalize_space s)
  | Ast.Fn_sum p ->
    let nodes = eval_path_inner session exec (Nodeseq.singleton node) p in
    Num
      (Nodeseq.fold_left
         (fun acc v -> acc +. number_of_string (Doc.string_value session.doc v))
         0.0 nodes)
  | Ast.Fn_floor e -> Num (Float.floor (to_num session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_ceiling e ->
    Num (Float.ceil (to_num session.doc (eval_expr session exec ~node ~pos ~last e)))
  | Ast.Fn_round e ->
    (* XPath round(): half goes toward positive infinity *)
    Num (Float.floor (to_num session.doc (eval_expr session exec ~node ~pos ~last e) +. 0.5))

and name_of_path session exec ~node p ~local =
  let target =
    match p with
    | None -> Some node
    | Some p -> Nodeseq.first (eval_path_inner session exec (Nodeseq.singleton node) p)
  in
  match target with
  | None -> ""
  | Some v -> (
    match Doc.tag_name session.doc v with
    | None -> ""
    | Some name -> if local then local_name name else name)

(* Predicate truth: a numeric predicate value means position() = value. *)
and predicate_holds session exec ~node ~pos ~last expr =
  match eval_expr session exec ~node ~pos ~last expr with
  | Num f -> float_of_int pos = f
  | (Bool _ | Str _ | Nodes _) as v -> to_bool v

(* Apply the predicate list to an ordered candidate list (axis order). *)
and apply_predicates session exec ~ordered predicates =
  List.fold_left
    (fun candidates expr ->
      let last = List.length candidates in
      List.filteri
        (fun i node -> predicate_holds session exec ~node ~pos:(i + 1) ~last expr)
        candidates)
    ordered predicates

(* Every step — including the steps of nested predicate paths — opens one
   tracing span; the tracer's stack nests them under the enclosing step. *)
and eval_step session exec context (s : Ast.step) =
  Exec.checkpoint exec;
  if not (Exec.tracing exec) then eval_step_inner session exec context s
  else
    Exec.span exec
      (Format.asprintf "%a" Ast.pp_step s)
      (fun () ->
        Exec.annot exec "in" (string_of_int (Nodeseq.length context));
        if s.Ast.predicates <> [] then
          Exec.annot exec "predicates"
            (Printf.sprintf "%d (%s)"
               (List.length s.Ast.predicates)
               (if List.exists Ast.positional s.Ast.predicates then
                  "positional, per-context-node"
                else "set-at-a-time filter"));
        let result = eval_step_inner session exec context s in
        Exec.annot exec "out" (string_of_int (Nodeseq.length result));
        result)

and eval_step_inner session exec context (s : Ast.step) =
  if s.Ast.predicates = [] || not (List.exists Ast.positional s.Ast.predicates) then begin
    (* set-at-a-time: evaluate the axis for the whole context, filter *)
    let nodes, tested = eval_axis session exec context s.Ast.axis s.Ast.test in
    let nodes = if tested then nodes else apply_node_test session.doc s.Ast.axis s.Ast.test nodes in
    match s.Ast.predicates with
    | [] -> nodes
    | predicates ->
      (* non-positional predicates are per-node boolean filters *)
      Nodeseq.filter
        (fun node ->
          List.for_all (fun e -> predicate_holds session exec ~node ~pos:1 ~last:1 e) predicates)
        nodes
  end
  else begin
    (* positional predicates: XPath proximity positions are relative to
       each context node's own axis result, so evaluate per context node *)
    let results =
      Nodeseq.fold_left
        (fun acc c ->
          let single = Nodeseq.singleton c in
          let nodes, tested = eval_axis session exec single s.Ast.axis s.Ast.test in
          let nodes =
            if tested then nodes else apply_node_test session.doc s.Ast.axis s.Ast.test nodes
          in
          let ordered =
            let l = Nodeseq.to_list nodes in
            if reverse_axis s.Ast.axis then List.rev l else l
          in
          let kept = apply_predicates session exec ~ordered s.Ast.predicates in
          Nodeseq.of_unsorted kept :: acc)
        [] context
    in
    List.fold_left Nodeseq.union Nodeseq.empty results
  end

(* the '//' abbreviation inserts this bridge step *)
and is_bridge (s : Ast.step) =
  s.Ast.axis = Axis.Descendant_or_self
  && s.Ast.test = Ast.Kind_test Ast.Any_node
  && s.Ast.predicates = []

(* Standard rewrite: descendant-or-self::node()/child::T = descendant::T
   — sound whenever T's predicates are not positional (positions in the
   original are relative to each parent, in the rewrite to the whole
   descendant set).  This lets '//tag' profit from name-test pushdown. *)
and rewrite_path (p : Ast.path) =
  let rec rewrite steps =
    match steps with
    | bridge :: (next : Ast.step) :: rest
      when is_bridge bridge
           && next.Ast.axis = Axis.Child
           && not (List.exists Ast.positional next.Ast.predicates) ->
      rewrite ({ next with Ast.axis = Axis.Descendant } :: rest)
    | s :: rest -> s :: rewrite rest
    | [] -> []
  in
  { p with Ast.steps = rewrite p.Ast.steps }

(* An absolute path starts at the (virtual) document node, which the
   encoding does not materialize.  The first step is remapped onto the
   root element: [child::T] of the document node selects the root element
   itself; [descendant(-or-self)::T] selects the root element and its
   descendants; the remaining axes are empty at the document node.  The
   lone path [/] denotes the root element (divergence from XPath's
   document node, documented in the README). *)
and eval_document_step session exec (s : Ast.step) =
  let root = Nodeseq.singleton (Doc.root session.doc) in
  let remapped_axis =
    match s.Ast.axis with
    | Axis.Child | Axis.Self -> Some Axis.Self
    | Axis.Descendant | Axis.Descendant_or_self -> Some Axis.Descendant_or_self
    | Axis.Ancestor_or_self -> Some Axis.Self
    | Axis.Ancestor | Axis.Attribute | Axis.Following | Axis.Following_sibling | Axis.Namespace
    | Axis.Parent | Axis.Preceding | Axis.Preceding_sibling ->
      None
  in
  match remapped_axis with
  | None -> Nodeseq.empty
  | Some axis -> eval_step session exec root { s with Ast.axis }

and eval_path_inner session exec context (p : Ast.path) =
  let p = rewrite_path p in
  if p.Ast.absolute then
    match p.Ast.steps with
    | [] -> Nodeseq.singleton (Doc.root session.doc)
    | bridge :: second :: rest when is_bridge bridge && second.Ast.axis = Axis.Child ->
      (* '//x': the root element is a child of the document node, so it
         belongs to the result when it matches — evaluate it via self *)
      let start = eval_document_step session exec bridge in
      let via_children = eval_step session exec start second in
      let via_root =
        eval_step session exec
          (Nodeseq.singleton (Doc.root session.doc))
          { second with Ast.axis = Axis.Self }
      in
      List.fold_left
        (fun ctx s -> eval_step session exec ctx s)
        (Nodeseq.union via_children via_root)
        rest
    | first :: rest ->
      let start = eval_document_step session exec first in
      List.fold_left (fun ctx s -> eval_step session exec ctx s) start rest
  else List.fold_left (fun ctx s -> eval_step session exec ctx s) context p.Ast.steps

let ensure_exec = function None -> Exec.make () | Some e -> e

let step ?exec session context s = eval_step session (ensure_exec exec) context s

let default_context session = Nodeseq.singleton (Doc.root session.doc)

let eval_path ?exec ?context session p =
  let context = match context with Some c -> c | None -> default_context session in
  eval_path_inner session (ensure_exec exec) context p

let eval_query ?exec ?context session q =
  let exec = ensure_exec exec in
  let context = match context with Some c -> c | None -> default_context session in
  List.fold_left
    (fun acc p -> Nodeseq.union acc (eval_path_inner session exec context p))
    Nodeseq.empty q

(* ------------------------------------------------------------------ *)
(* explain                                                              *)
(* ------------------------------------------------------------------ *)

let explain ?context session (p : Ast.path) =
  let doc = session.doc in
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "path: %s\n" (Ast.path_to_string p);
  let p =
    let rewritten = rewrite_path p in
    if rewritten <> p then
      out "rewritten: %s   (desc-or-self/child collapsed to descendant)\n"
        (Ast.path_to_string rewritten);
    rewritten
  in
  out "strategy: %s\n" (strategy_to_string session.strategy);
  let start =
    if p.Ast.absolute then Nodeseq.singleton (Doc.root doc)
    else match context with Some c -> c | None -> Nodeseq.singleton (Doc.root doc)
  in
  if p.Ast.absolute then
    out "start: document node (emulated at the root element, pre=0)\n"
  else out "start: context of %d node(s)\n" (Nodeseq.length start);
  let describe_step i ctx (s : Ast.step) =
    let exec = Exec.make () in
    let result =
      if p.Ast.absolute && i = 0 then eval_document_step session exec s
      else eval_step session exec ctx s
    in
    out "step %d: %s\n" (i + 1) (Format.asprintf "%a" Ast.pp_step s);
    (match (s.Ast.axis, session.strategy.algorithm, s.Ast.test) with
    | (Axis.Descendant | Axis.Ancestor | Axis.Descendant_or_self | Axis.Ancestor_or_self), Staircase mode, test ->
      out "  algorithm: staircase join (%s)\n" (Sj.skip_mode_to_string mode);
      (match test with
      | Ast.Name_test tag ->
        let direction =
          match s.Ast.axis with
          | Axis.Descendant | Axis.Descendant_or_self -> `Descendant
          | Axis.Ancestor | Axis.Ancestor_or_self | Axis.Attribute | Axis.Child
          | Axis.Following | Axis.Following_sibling | Axis.Namespace | Axis.Parent
          | Axis.Preceding | Axis.Preceding_sibling | Axis.Self ->
            `Ancestor
        in
        let fragment = Sj.View.length (tag_view session tag) in
        let estimate = estimated_step_touches session ctx direction in
        let pushed =
          match session.strategy.pushdown with
          | `Never -> false
          | `Always -> true
          | `Cost_based -> fragment < estimate
        in
        out "  name test '%s': fragment %d node(s) vs. estimated scan of %d node(s)\n" tag
          fragment estimate;
        out "  pushdown: %s\n" (if pushed then "yes (join over the tag fragment)" else "no (filter after the join)")
      | Ast.Wildcard | Ast.Kind_test _ -> ())
    | (Axis.Descendant | Axis.Ancestor), algorithm, _ ->
      out "  algorithm: %s\n" (algorithm_to_string algorithm)
    | (Axis.Following | Axis.Preceding), _, _ ->
      out "  algorithm: pruned single region query (context degenerates, §3.1)\n"
    | (Axis.Child | Axis.Parent | Axis.Attribute | Axis.Following_sibling
      | Axis.Preceding_sibling | Axis.Self | Axis.Namespace | Axis.Descendant_or_self
      | Axis.Ancestor_or_self), _, _ ->
      out "  algorithm: structural size/parent arithmetic\n");
    if s.Ast.predicates <> [] then
      out "  predicates: %d, %s\n"
        (List.length s.Ast.predicates)
        (if List.exists Ast.positional s.Ast.predicates then
           "positional -> per-context-node evaluation"
        else "non-positional -> set-at-a-time filter");
    out "  cardinality: %d -> %d   work: %s\n" (Nodeseq.length ctx) (Nodeseq.length result)
      (Format.asprintf "%a" Stats.pp_inline exec.Exec.stats);
    result
  in
  let _final = List.fold_left (fun (i, ctx) s -> (i + 1, describe_step i ctx s)) (0, start) p.Ast.steps in
  (* the pure-SQL rendition of §2.1, when the path is translatable *)
  let sql_steps =
    List.map
      (fun (s : Ast.step) ->
        let name_test =
          match s.Ast.test with
          | Ast.Name_test tag -> Some (Some tag)
          | Ast.Kind_test Ast.Any_node -> Some None
          | Ast.Wildcard | Ast.Kind_test _ -> None
        in
        match (s.Ast.axis, name_test, s.Ast.predicates) with
        | Axis.Descendant, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Descendant; name_test = nt }
        | Axis.Ancestor, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Ancestor; name_test = nt }
        | Axis.Following, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Following; name_test = nt }
        | Axis.Preceding, Some nt, [] -> Some { Scj_engine.Sqlgen.axis = `Preceding; name_test = nt }
        | _, _, _ -> None)
      p.Ast.steps
  in
  (if sql_steps <> [] && List.for_all Option.is_some sql_steps then
     let steps = List.filter_map Fun.id sql_steps in
     out "\nequivalent pure-SQL translation (§2.1):\n%s\n" (Scj_engine.Sqlgen.of_steps steps));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

let analyze ?context session (p : Ast.path) =
  let exec = Exec.traced () in
  let trace = match exec.Exec.trace with Some tr -> tr | None -> assert false in
  let context = match context with Some c -> c | None -> default_context session in
  let result =
    Exec.span exec
      ("query: " ^ Ast.path_to_string p)
      (fun () ->
        Exec.annot exec "strategy" (strategy_to_string session.strategy);
        let rewritten = rewrite_path p in
        if rewritten <> p then Exec.annot exec "rewritten" (Ast.path_to_string rewritten);
        eval_path_inner session exec context p)
  in
  (result, trace)

let run ?exec ?context session input =
  match Parse.query input with
  | Ok q -> Ok (eval_query ?exec ?context session q)
  | Error _ as e -> e

let run_exn ?exec ?context session input =
  match run ?exec ?context session input with
  | Ok r -> r
  | Error e -> invalid_arg ("Eval.run_exn: " ^ e)
