(** Abstract syntax for the supported XPath 1.0 subset.

    Location paths with all thirteen axes, name/wildcard/kind node tests,
    and predicates built from relative paths, comparisons, positions,
    [count], [not], [and]/[or].  This covers the paper's workload (axis
    steps with name tests, e.g.
    [/descendant::bidder[descendant::increase]]) plus enough of the
    predicate language for realistic applications. *)

type kind_test =
  | Any_node  (** [node()] *)
  | Text_node  (** [text()] *)
  | Comment_node  (** [comment()] *)
  | Pi_node of string option  (** [processing-instruction(target?)] *)

type node_test =
  | Name_test of string
  | Wildcard
  | Kind_test of kind_test

type expr =
  | Path_expr of path  (** node-set valued; as a boolean: non-empty? *)
  | Literal of string
  | Number of float
  | Position
  | Last
  | Count of path
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Compare of cmp * expr * expr
  (* XPath 1.0 core function library (the subset useful without
     namespaces and ids) *)
  | Fn_string of expr option  (** [string(x?)]; no argument: context node *)
  | Fn_number of expr option
  | Fn_boolean of expr
  | Fn_true
  | Fn_false
  | Fn_name of path option  (** [name(p?)]: tag name of the (first) node *)
  | Fn_local_name of path option
  | Fn_concat of expr list  (** two or more arguments *)
  | Fn_contains of expr * expr
  | Fn_starts_with of expr * expr
  | Fn_substring of expr * expr * expr option
      (** [substring(s, start, len?)], 1-based with XPath rounding *)
  | Fn_substring_before of expr * expr
  | Fn_substring_after of expr * expr
  | Fn_translate of expr * expr * expr
      (** [translate(s, from, to)]: map characters of [from] to [to];
          characters of [from] beyond [to]'s length are removed *)
  | Fn_string_length of expr option
  | Fn_normalize_space of expr option
  | Fn_sum of path
  | Fn_floor of expr
  | Fn_ceiling of expr
  | Fn_round of expr

and cmp = Eq | Neq | Lt | Le | Gt | Ge

and step = { axis : Scj_encoding.Axis.t; test : node_test; predicates : expr list }

and path = { absolute : bool; steps : step list }

(** A query is a union ([|]) of paths. *)
type query = path list

(** [positional e] — does [e] mention [position()]/[last()], or is it a
    number-valued top-level expression (which XPath compares against the
    context position)?  Positional predicates force per-context-node
    evaluation. *)
val positional : expr -> bool

val step : ?predicates:expr list -> Scj_encoding.Axis.t -> node_test -> step

val pp_expr : Format.formatter -> expr -> unit

val pp_step : Format.formatter -> step -> unit

val pp_path : Format.formatter -> path -> unit

val pp_query : Format.formatter -> query -> unit

val path_to_string : path -> string
