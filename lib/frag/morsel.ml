(* Morsel-driven intra-query parallelism (Leis et al., "Morsel-Driven
   Parallelism").  A staircase join is split into fixed-size morsels —
   contiguous chunks of the document table, ~16–64K nodes each — that a
   shared pool of worker domains claims one at a time.  Unlike
   [Parallel]'s per-step fork/join (spawn [domains-1] domains, join them,
   repeat for the next step), the pool is persistent: a multi-step plan
   submits one batch per join and the same hot domains pull morsels from
   every batch, and from every concurrent query, with no spawn/join on
   any step boundary.  The server's query workers draw from the very same
   pool (queries submit morsels, the server submits queries).

   Counter parity: every morsel carries a private [Stats.t], and each
   morsel's counter updates mirror the serial join exactly for the node
   range it owns, so the Σ-tallies merge equals a serial run bit for bit
   and [Staircase.Reference] stays the oracle.  Scan phases whose control
   flow is data-dependent (skip hops, early breaks) are never split
   mid-stream — only the comparison-free copy phases and the
   per-node-independent no-skip scans are chunked. *)

module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Int_col = Scj_bat.Int_col
module Stats = Scj_stats.Stats
module Exec = Scj_trace.Exec
module Sj = Scj_core.Staircase

(* ------------------------------------------------------------------ *)
(* The shared domain pool                                              *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* A batch is an indexed family of tasks.  Claiming is a one-word bump
     under the batch mutex; [width] caps how many domains work the batch
     at once, so a query with [exec.domains = w] runs at most [w]-wide
     however large the pool is.  A failed task records the first
     exception and cancels the unclaimed remainder; the submitter
     re-raises it once every in-flight task has settled — worker
     exceptions are never swallowed. *)
  type batch = {
    run : int -> unit;
    n : int;
    width : int;
    bm : Mutex.t;
    bcv : Condition.t;  (* signalled when the batch completes *)
    mutable next : int;  (* next unclaimed task; >= n once drained or cancelled *)
    mutable live : int;  (* claimed but not yet finished *)
    mutable failed : exn option;
  }

  type t = {
    m : Mutex.t;
    work : Condition.t;  (* new batch, freed width, or shutdown *)
    mutable active : batch list;  (* submission order; drained batches removed *)
    mutable workers : unit Domain.t list;
    mutable size : int;
    mutable stopping : bool;
  }

  let size t =
    Mutex.lock t.m;
    let s = t.size in
    Mutex.unlock t.m;
    s

  let claim b =
    Mutex.lock b.bm;
    let r =
      if b.next < b.n && b.live < b.width then begin
        let i = b.next in
        b.next <- i + 1;
        b.live <- b.live + 1;
        Some i
      end
      else None
    in
    Mutex.unlock b.bm;
    r

  let fail b e =
    Mutex.lock b.bm;
    if b.failed = None then b.failed <- Some e;
    (* cancel the unclaimed remainder: nobody claims past [n] *)
    b.next <- b.n;
    Mutex.unlock b.bm

  let remove t b =
    Mutex.lock t.m;
    t.active <- List.filter (fun b' -> b' != b) t.active;
    Mutex.unlock t.m

  let finish t b =
    Mutex.lock b.bm;
    b.live <- b.live - 1;
    let completed = b.next >= b.n && b.live = 0 in
    let claimable = b.next < b.n in
    if completed then Condition.broadcast b.bcv;
    Mutex.unlock b.bm;
    if completed then remove t b
    else if claimable then begin
      (* freed a width slot with work left: wake a sleeping domain *)
      Mutex.lock t.m;
      Condition.broadcast t.work;
      Mutex.unlock t.m
    end

  (* Claim-and-run until the batch has nothing left for this domain. *)
  let rec drain t b =
    match claim b with
    | None -> ()
    | Some i ->
      (match b.run i with () -> () | exception e -> fail b e);
      finish t b;
      drain t b

  (* Oldest claimable batch; prune batches that can never yield work
     again (drained with no waiter still attached is removed by its last
     finisher, so pruning here is just a scan). *)
  let pick t =
    let claimable b =
      Mutex.lock b.bm;
      let r = b.next < b.n && b.live < b.width in
      Mutex.unlock b.bm;
      r
    in
    List.find_opt claimable t.active

  let worker_loop t =
    Mutex.lock t.m;
    let rec loop () =
      match pick t with
      | Some b ->
        Mutex.unlock t.m;
        drain t b;
        Mutex.lock t.m;
        loop ()
      | None ->
        (* finish all claimable work before honouring shutdown, so a
           stop never strands a submitted batch *)
        if t.stopping then Mutex.unlock t.m
        else begin
          Condition.wait t.work t.m;
          loop ()
        end
    in
    loop ()

  (* Grow-only: the pool never shrinks while servers or queries hold it. *)
  let ensure t n =
    Mutex.lock t.m;
    if n > t.size && not t.stopping then begin
      let fresh = List.init (n - t.size) (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
      t.workers <- t.workers @ fresh;
      t.size <- n
    end;
    Mutex.unlock t.m

  let create ?(workers = 0) () =
    let t =
      {
        m = Mutex.create ();
        work = Condition.create ();
        active = [];
        workers = [];
        size = 0;
        stopping = false;
      }
    in
    if workers > 0 then ensure t workers;
    t

  let enqueue t b =
    Mutex.lock t.m;
    t.active <- t.active @ [ b ];
    Condition.broadcast t.work;
    Mutex.unlock t.m

  let make_batch ~width ~n run =
    {
      run;
      n;
      width = max 1 width;
      bm = Mutex.create ();
      bcv = Condition.create ();
      next = 0;
      live = 0;
      failed = None;
    }

  (* Run [n] tasks and wait.  The submitting domain helps execute its own
     batch — progress is guaranteed even on a zero-worker pool, and a
     pool worker that submits a nested batch can never deadlock waiting
     for peers that are themselves waiting. *)
  let submit t ~width ~n run =
    if n > 0 then begin
      let b = make_batch ~width ~n run in
      enqueue t b;
      drain t b;
      Mutex.lock b.bm;
      while not (b.next >= b.n && b.live = 0) do
        Condition.wait b.bcv b.bm
      done;
      let failed = b.failed in
      Mutex.unlock b.bm;
      match failed with Some e -> raise e | None -> ()
    end

  (* Fire-and-forget single task (the server's per-query jobs).  Runs on
     a pool domain, so the pool is grown to at least one worker. *)
  let async t run =
    ensure t 1;
    enqueue t (make_batch ~width:1 ~n:1 (fun _ -> run ()))

  let shutdown t =
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.work;
    let workers = t.workers in
    t.workers <- [];
    t.size <- 0;
    Mutex.unlock t.m;
    List.iter Domain.join workers

  (* The process-wide shared pool.  Sized so that [default_domains]-wide
     batches run fully parallel counting the submitting domain; the
     server grows it to its worker count on creation. *)
  let shared_mutex = Mutex.create ()

  let shared_pool = ref None

  let shared () =
    Mutex.lock shared_mutex;
    let p =
      match !shared_pool with
      | Some p -> p
      | None ->
        let p = create () in
        shared_pool := Some p;
        Mutex.unlock shared_mutex;
        ensure p (max 0 (Exec.default_domains () - 1));
        Mutex.lock shared_mutex;
        p
    in
    Mutex.unlock shared_mutex;
    p

  let ensure_shared n = ensure (shared ()) n
end

(* ------------------------------------------------------------------ *)
(* Splitting a staircase join into morsels                             *)
(* ------------------------------------------------------------------ *)

(* Middle of the issue's 16–64K band; big enough that claim overhead
   vanishes, small enough that a skewed partition still spreads across
   the pool. *)
let default_morsel_size = 32768

(* One unit of work inside a morsel.  Ranges are inclusive.  Only
   counter-additive phases are ever chunked below partition granularity:
   [Copy] (bulk blit, no comparisons) and the no-skip scans (one
   [scanned] per node, append decisions independent per node).  Skip
   scans carry data-dependent control flow and stay whole. *)
(* How an ancestor scan advances past a non-ancestor: stay put
   ([Hop_none], visit every node), jump to its post rank ([Hop_post]), or
   jump over its subtree ([Hop_size]). *)
type hop = Hop_none | Hop_post | Hop_size

type op =
  | Copy of { lo : int; hi : int }
  | Scan_desc of { boundary : int; lo : int; hi : int; skip : bool }
  | Tally_skip of int
  | Scan_anc of { boundary : int; lo : int; hi : int; hop : hop }

let op_weight = function
  | Copy { lo; hi } | Scan_desc { lo; hi; _ } | Scan_anc { lo; hi; _ } -> hi - lo + 1
  | Tally_skip _ -> 1

(* Split the inclusive range [lo..hi] into chunks of at most
   [morsel_size], emitting [mk lo' hi'] per chunk in ascending order. *)
let chunked ~morsel_size ~lo ~hi mk acc =
  let acc = ref acc in
  let start = ref lo in
  while !start <= hi do
    let stop = min hi (!start + morsel_size - 1) in
    acc := mk !start stop :: !acc;
    start := stop + 1
  done;
  !acc

(* Ops for one descendant partition, mirroring
   [Parallel.scan_desc_partition] phase for phase. *)
let desc_partition_ops ~mode ~sizes ~morsel_size (p : Sj.partition) acc =
  let boundary = p.Sj.boundary_post in
  let c = p.Sj.scan_from - 1 in
  match mode with
  | Sj.No_skipping ->
    chunked ~morsel_size ~lo:p.Sj.scan_from ~hi:p.Sj.scan_to
      (fun lo hi -> Scan_desc { boundary; lo; hi; skip = false })
      acc
  | Sj.Skipping ->
    Scan_desc { boundary; lo = p.Sj.scan_from; hi = p.Sj.scan_to; skip = true } :: acc
  | Sj.Estimation ->
    let copy_to = min p.Sj.scan_to boundary in
    let acc =
      if copy_to >= p.Sj.scan_from then
        chunked ~morsel_size ~lo:p.Sj.scan_from ~hi:copy_to (fun lo hi -> Copy { lo; hi }) acc
      else acc
    in
    let tail_from = max p.Sj.scan_from (copy_to + 1) in
    if tail_from <= p.Sj.scan_to then
      Scan_desc { boundary; lo = tail_from; hi = p.Sj.scan_to; skip = true } :: acc
    else acc
  | Sj.Exact_size ->
    let copy_to = min p.Sj.scan_to (c + sizes.(c)) in
    let acc =
      if copy_to >= p.Sj.scan_from then
        chunked ~morsel_size ~lo:p.Sj.scan_from ~hi:copy_to (fun lo hi -> Copy { lo; hi }) acc
      else acc
    in
    if p.Sj.scan_to > copy_to then Tally_skip (p.Sj.scan_to - copy_to) :: acc else acc

(* Ops for one ancestor partition.  Only [No_skipping] visits every node
   (hop 0), so only it may be chunked; the skip modes hop by
   [post(i) - i] or [size(i)] — data-dependent, whole-partition. *)
let anc_partition_ops ~mode ~morsel_size (p : Sj.partition) acc =
  let boundary = p.Sj.boundary_post in
  match mode with
  | Sj.No_skipping ->
    chunked ~morsel_size ~lo:p.Sj.scan_from ~hi:p.Sj.scan_to
      (fun lo hi -> Scan_anc { boundary; lo; hi; hop = Hop_none })
      acc
  | Sj.Skipping | Sj.Estimation ->
    Scan_anc { boundary; lo = p.Sj.scan_from; hi = p.Sj.scan_to; hop = Hop_post } :: acc
  | Sj.Exact_size ->
    Scan_anc { boundary; lo = p.Sj.scan_from; hi = p.Sj.scan_to; hop = Hop_size } :: acc

(* Greedy grouping: consecutive ops share a morsel until its weight
   reaches [morsel_size].  Ops stay in partition order and every op
   appends ascending pre ranks, so concatenating the per-morsel buffers
   in morsel order reproduces document order. *)
let group_ops ~morsel_size ops =
  let n = Array.length ops in
  let bounds = ref [] in
  let start = ref 0 in
  let weight = ref 0 in
  for i = 0 to n - 1 do
    let w = op_weight ops.(i) in
    if !weight > 0 && !weight + w > morsel_size then begin
      bounds := (!start, i) :: !bounds;
      start := i;
      weight := 0
    end;
    weight := !weight + w
  done;
  if n > 0 then bounds := (!start, n) :: !bounds;
  Array.of_list (List.rev !bounds)

(* ------------------------------------------------------------------ *)
(* Morsel execution                                                    *)
(* ------------------------------------------------------------------ *)

let run_op ~doc ~posts ~sizes ~kinds out stats = function
  | Copy { lo; hi } ->
    let appended = Doc.append_nonattr_range doc out ~lo ~hi in
    stats.Stats.copied <- stats.Stats.copied + (hi - lo + 1);
    stats.Stats.appended <- stats.Stats.appended + appended
  | Tally_skip n -> stats.Stats.skipped <- stats.Stats.skipped + n
  | Scan_desc { boundary; lo; hi; skip } ->
    let i = ref lo in
    let break = ref false in
    while (not !break) && !i <= hi do
      stats.Stats.scanned <- stats.Stats.scanned + 1;
      if posts.(!i) < boundary then begin
        if kinds.(!i) <> Doc.Attribute then begin
          Int_col.append_unit out !i;
          stats.Stats.appended <- stats.Stats.appended + 1
        end;
        incr i
      end
      else if skip then begin
        stats.Stats.skipped <- stats.Stats.skipped + (hi - !i);
        break := true
      end
      else incr i
    done
  | Scan_anc { boundary; lo; hi; hop } ->
    let i = ref lo in
    while !i <= hi do
      stats.Stats.scanned <- stats.Stats.scanned + 1;
      if posts.(!i) > boundary then begin
        Int_col.append_unit out !i;
        stats.Stats.appended <- stats.Stats.appended + 1;
        incr i
      end
      else begin
        let dist =
          match hop with
          | Hop_none -> 0
          | Hop_post -> max 0 (posts.(!i) - !i)
          | Hop_size -> sizes.(!i)
        in
        let dist = min dist (hi - !i) in
        stats.Stats.skipped <- stats.Stats.skipped + dist;
        i := !i + dist + 1
      end
    done

(* Run all grouped morsels of one join through the pool and merge the
   per-morsel buffers and tallies deterministically (morsel order). *)
let run_morsels exec pool ops bounds ~doc ~posts ~sizes ~kinds =
  let nm = Array.length bounds in
  if nm = 0 then Nodeseq.empty
  else begin
    let outs = Array.init nm (fun _ -> Int_col.create ~capacity:64 ()) in
    let tallies = Array.init nm (fun _ -> Stats.create ()) in
    let task m =
      (* deadline / cancellation poll at every morsel boundary *)
      Exec.checkpoint exec;
      let lo, hi = bounds.(m) in
      let out = outs.(m) and stats = tallies.(m) in
      for o = lo to hi - 1 do
        run_op ~doc ~posts ~sizes ~kinds out stats ops.(o)
      done
    in
    if Exec.tracing exec then Exec.annot exec "morsels" (string_of_int nm);
    Pool.submit pool ~width:exec.Exec.domains ~n:nm task;
    Array.iter (fun s -> Stats.add exec.Exec.stats s) tallies;
    let total = Array.fold_left (fun acc c -> acc + Int_col.length c) 0 outs in
    let merged = Array.make total 0 in
    let pos = ref 0 in
    Array.iter
      (fun col ->
        Int_col.blit_into col merged ~dst_pos:!pos;
        pos := !pos + Int_col.length col)
      outs;
    Nodeseq.of_sorted_array merged
  end

let ensure_exec = function None -> Exec.make () | Some e -> e

let desc ?pool ?(morsel_size = default_morsel_size) ?exec doc context =
  let exec = ensure_exec exec in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let mode = exec.Exec.mode in
  (* prune once on the submitting thread, exactly like the serial join *)
  let context = Sj.prune_desc ~exec doc context in
  let partitions = Sj.desc_partitions_pruned doc context in
  let sizes = Doc.size_array doc in
  let ops =
    Array.of_list
      (List.rev
         (List.fold_left
            (fun acc p -> desc_partition_ops ~mode ~sizes ~morsel_size p acc)
            [] partitions))
  in
  let bounds = group_ops ~morsel_size ops in
  run_morsels exec pool ops bounds ~doc ~posts:(Doc.post_array doc) ~sizes
    ~kinds:(Doc.kind_array doc)

let anc ?pool ?(morsel_size = default_morsel_size) ?exec doc context =
  let exec = ensure_exec exec in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let mode = exec.Exec.mode in
  let context = Sj.prune_anc ~exec doc context in
  let partitions = Sj.anc_partitions_pruned doc context in
  let sizes = Doc.size_array doc in
  let ops =
    Array.of_list
      (List.rev
         (List.fold_left (fun acc p -> anc_partition_ops ~mode ~morsel_size p acc) [] partitions))
  in
  let bounds = group_ops ~morsel_size ops in
  run_morsels exec pool ops bounds ~doc ~posts:(Doc.post_array doc) ~sizes
    ~kinds:(Doc.kind_array doc)
