(** Partition-parallel staircase join.

    The staircase partitions of Fig. 8 "separate the ancestor-or-self
    paths in the document tree", and the paper observes (§3.2, §6) that the
    partitioned pre/post plane naturally leads to a parallel XPath
    execution strategy: each partition can be scanned by an independent
    worker, and because partitions are disjoint, ascending pre ranges, the
    concatenated per-partition outputs are already in document order.

    This module realizes that strategy with OCaml 5 domains.  Workers share
    the read-only encoding columns; each one owns its result buffer {e and}
    its own {!Scj_stats.Stats.t}, merged into [exec.stats] with
    {!Scj_stats.Stats.add} after the join — a parallel run reports exactly
    the counters of the equivalent serial {!Scj_core.Staircase} call.

    Work is distributed by {e scan length}, not partition count: each
    worker takes a contiguous run of partitions whose summed scan ranges
    approximate an equal share of the touched nodes, so one huge partition
    no longer serializes the join.  The context is pruned exactly once (on
    the coordinating thread), partitions are built from the pruned
    staircase directly, copy phases use the bulk attribute-prefix kernel
    of {!Scj_encoding.Doc.append_nonattr_range}, and the final merge blits
    each worker's buffer prefix straight into the result array — no
    intermediate copies.

    The signatures mirror the serial joins: one optional
    {!Scj_trace.Exec.t} carries the skipping variant, the counters and the
    worker count ([exec.domains], default
    [Domain.recommended_domain_count] capped at 8 and by the number of
    partitions). *)

(** [desc ?exec doc context] — like {!Scj_core.Staircase.desc}, evaluated
    by [exec.domains] workers. *)
val desc :
  ?exec:Scj_trace.Exec.t -> Scj_encoding.Doc.t -> Scj_encoding.Nodeseq.t -> Scj_encoding.Nodeseq.t

(** [anc ?exec doc context] — parallel ancestor join. *)
val anc :
  ?exec:Scj_trace.Exec.t -> Scj_encoding.Doc.t -> Scj_encoding.Nodeseq.t -> Scj_encoding.Nodeseq.t

(** The default worker count of a fresh {!Scj_trace.Exec.t}. *)
val default_domains : unit -> int
