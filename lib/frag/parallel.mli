(** Partition-parallel staircase join.

    The staircase partitions of Fig. 8 "separate the ancestor-or-self
    paths in the document tree", and the paper observes (§3.2, §6) that the
    partitioned pre/post plane naturally leads to a parallel XPath
    execution strategy: each partition can be scanned by an independent
    worker, and because partitions are disjoint, ascending pre ranges, the
    concatenated per-partition outputs are already in document order.

    This module realizes that strategy with OCaml 5 domains.  Workers share
    the read-only encoding columns; each one owns its result buffer {e and}
    its own {!Scj_stats.Stats.t}, merged into [exec.stats] with
    {!Scj_stats.Stats.add} after the join — a parallel run reports exactly
    the counters of the equivalent serial {!Scj_core.Staircase} call.

    The signatures mirror the serial joins: one optional
    {!Scj_trace.Exec.t} carries the skipping variant, the counters and the
    worker count ([exec.domains], default
    [Domain.recommended_domain_count] capped at 8 and by the number of
    partitions). *)

(** [desc ?exec doc context] — like {!Scj_core.Staircase.desc}, evaluated
    by [exec.domains] workers. *)
val desc :
  ?exec:Scj_trace.Exec.t -> Scj_encoding.Doc.t -> Scj_encoding.Nodeseq.t -> Scj_encoding.Nodeseq.t

(** [anc ?exec doc context] — parallel ancestor join. *)
val anc :
  ?exec:Scj_trace.Exec.t -> Scj_encoding.Doc.t -> Scj_encoding.Nodeseq.t -> Scj_encoding.Nodeseq.t

(** The default worker count of a fresh {!Scj_trace.Exec.t}. *)
val default_domains : unit -> int
