(** Tag-name fragmentation of the doc table (§6, Future Research).

    The paper reports that fragmenting the 1 GB document by tag name brought
    Q1 from 345 ms down to 39 ms: an axis step with a name test only needs
    the (pre, post) pairs of nodes carrying that tag, and the staircase join
    works unchanged on such a fragment because the pre/post tree properties
    survive on any subset of the plane.

    A fragmented document stores one {!Scj_core.Staircase.View.t} per tag
    name (plus one per non-element node kind), built in a single pass. *)

type t

(** [build doc] fragments the whole document by tag name. *)
val build : Scj_encoding.Doc.t -> t

val doc : t -> Scj_encoding.Doc.t

(** Number of tag fragments. *)
val n_fragments : t -> int

(** [fragment t name] is the view of element nodes named [name], if any. *)
val fragment : t -> string -> Scj_core.Staircase.View.t option

(** [fragment_size t name] is the node count of a fragment (0 if absent). *)
val fragment_size : t -> string -> int

(** [tags t] lists the fragment names with their sizes, largest first. *)
val tags : t -> (string * int) list

(** [desc_step ?exec t context ~tag] evaluates [context/descendant::tag] on the
    fragment — the fragmented rendition of Q1's steps. *)
val desc_step :
  ?exec:Scj_trace.Exec.t ->
  t ->
  Scj_encoding.Nodeseq.t ->
  tag:string ->
  Scj_encoding.Nodeseq.t

(** [anc_step ?exec t context ~tag] evaluates [context/ancestor::tag]. *)
val anc_step :
  ?exec:Scj_trace.Exec.t ->
  t ->
  Scj_encoding.Nodeseq.t ->
  tag:string ->
  Scj_encoding.Nodeseq.t
