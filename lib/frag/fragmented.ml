module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Int_col = Scj_bat.Int_col
module Sj = Scj_core.Staircase

type t = { doc : Doc.t; by_tag : (string, Sj.View.t) Hashtbl.t }

let build doc =
  let n = Doc.n_nodes doc in
  let kinds = Doc.kind_array doc in
  (* collect element positions per tag symbol in one pass *)
  let buckets : (int, Int_col.t) Hashtbl.t = Hashtbl.create 64 in
  for pre = 0 to n - 1 do
    if kinds.(pre) = Doc.Element then begin
      let sym = Doc.tag doc pre in
      let bucket =
        match Hashtbl.find_opt buckets sym with
        | Some b -> b
        | None ->
          let b = Int_col.create ~capacity:16 () in
          Hashtbl.add buckets sym b;
          b
      in
      Int_col.append_unit bucket pre
    end
  done;
  let by_tag = Hashtbl.create (Hashtbl.length buckets) in
  Hashtbl.iter
    (fun sym bucket ->
      let name = Scj_bat.Dict.name (Doc.names doc) sym in
      let seq = Nodeseq.of_sorted_array (Int_col.to_array bucket) in
      Hashtbl.replace by_tag name (Sj.View.of_nodeseq doc seq))
    buckets;
  { doc; by_tag }

let doc t = t.doc

let n_fragments t = Hashtbl.length t.by_tag

let fragment t name = Hashtbl.find_opt t.by_tag name

let fragment_size t name =
  match fragment t name with None -> 0 | Some v -> Sj.View.length v

let tags t =
  let all = Hashtbl.fold (fun name v acc -> (name, Sj.View.length v) :: acc) t.by_tag [] in
  List.sort (fun (_, a) (_, b) -> Int.compare b a) all

let desc_step ?exec t context ~tag =
  match fragment t tag with
  | None -> Nodeseq.empty
  | Some view -> Sj.desc_view ?exec t.doc view context

let anc_step ?exec t context ~tag =
  match fragment t tag with
  | None -> Nodeseq.empty
  | Some view -> Sj.anc_view ?exec t.doc view context
