(** Morsel-driven intra-query parallelism for the staircase join.

    A join is split into fixed-size morsels (~16–64K document nodes);
    worker domains from a shared, persistent pool claim morsels one at a
    time, so a multi-step plan keeps every core busy end-to-end with no
    per-step fork/join, and concurrent queries interleave on the same
    domains.  Each morsel tallies work into a private {!Scj_stats.Stats}
    whose merge is bit-identical to a serial run (the Σ-tallies counter
    parity invariant); [Staircase.Reference] remains the oracle. *)

module Pool : sig
  (** A work pool of OCaml domains shared by queries (which submit
      batches of morsels) and the server (which submits queries). *)
  type t

  (** [create ()] makes an empty pool; grow it with {!ensure}. *)
  val create : ?workers:int -> unit -> t

  (** Current number of worker domains. *)
  val size : t -> int

  (** [ensure t n] grows the pool to at least [n] worker domains
      (never shrinks). *)
  val ensure : t -> int -> unit

  (** [submit t ~width ~n run] executes [run 0 .. run (n-1)], at most
      [width] domains wide, and returns once all tasks settle.  The
      submitting domain helps execute the batch, so progress is
      guaranteed on a zero-worker pool and nested submission from a pool
      worker cannot deadlock.  If a task raises, the unclaimed remainder
      is cancelled and the first exception is re-raised here after every
      in-flight task has finished — worker exceptions are never
      swallowed. *)
  val submit : t -> width:int -> n:int -> (int -> unit) -> unit

  (** [async t run] schedules [run] on a pool domain and returns
      immediately, growing the pool to at least one worker.  [run] must
      handle its own exceptions. *)
  val async : t -> (unit -> unit) -> unit

  (** Stop and join all worker domains.  Claimable work already
      submitted is finished first. *)
  val shutdown : t -> unit

  (** The process-wide shared pool, created on first use with
      [Exec.default_domains () - 1] workers. *)
  val shared : unit -> t

  (** [ensure_shared n] grows the shared pool to at least [n] workers. *)
  val ensure_shared : int -> unit
end

(** Morsel granularity in document nodes (32K, middle of the 16–64K
    band). *)
val default_morsel_size : int

(** [desc ?pool ?morsel_size ?exec doc context] — the descendant
    staircase join, morselized over [pool] (default: the shared pool) at
    most [exec.domains] wide.  Results and work counters are
    bit-identical to the serial join. *)
val desc :
  ?pool:Pool.t ->
  ?morsel_size:int ->
  ?exec:Scj_trace.Exec.t ->
  Scj_encoding.Doc.t ->
  Scj_encoding.Nodeseq.t ->
  Scj_encoding.Nodeseq.t

(** [anc ?pool ?morsel_size ?exec doc context] — the ancestor join,
    morselized like {!desc}. *)
val anc :
  ?pool:Pool.t ->
  ?morsel_size:int ->
  ?exec:Scj_trace.Exec.t ->
  Scj_encoding.Doc.t ->
  Scj_encoding.Nodeseq.t ->
  Scj_encoding.Nodeseq.t
