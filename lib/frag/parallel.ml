module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Int_col = Scj_bat.Int_col
module Stats = Scj_stats.Stats
module Exec = Scj_trace.Exec
module Sj = Scj_core.Staircase

let ensure_exec = function None -> Exec.make () | Some e -> e

(* Evaluate one descendant partition into a private buffer.  The counter
   accounting mirrors Scj_core.Staircase.desc line by line — copy phases
   are bulk range fills over the attribute prefix-sum column with one
   [copied]/[appended] update per phase — so the merged per-worker
   counters are indistinguishable from a serial run. *)
let scan_desc_partition ~mode ~doc ~posts ~sizes ~kinds (p : Sj.partition) out stats =
  let boundary = p.Sj.boundary_post in
  let c = p.Sj.scan_from - 1 in
  let scan_phase ~skip from =
    let i = ref from in
    let break = ref false in
    while (not !break) && !i <= p.Sj.scan_to do
      stats.Stats.scanned <- stats.Stats.scanned + 1;
      if posts.(!i) < boundary then begin
        if kinds.(!i) <> Doc.Attribute then begin
          Int_col.append_unit out !i;
          stats.Stats.appended <- stats.Stats.appended + 1
        end;
        incr i
      end
      else if skip then begin
        stats.Stats.skipped <- stats.Stats.skipped + (p.Sj.scan_to - !i);
        break := true
      end
      else incr i
    done
  in
  let copy_phase upto =
    if upto >= p.Sj.scan_from then begin
      let appended = Doc.append_nonattr_range doc out ~lo:p.Sj.scan_from ~hi:upto in
      stats.Stats.copied <- stats.Stats.copied + (upto - p.Sj.scan_from + 1);
      stats.Stats.appended <- stats.Stats.appended + appended
    end
  in
  match mode with
  | Sj.No_skipping -> scan_phase ~skip:false p.Sj.scan_from
  | Sj.Skipping -> scan_phase ~skip:true p.Sj.scan_from
  | Sj.Estimation ->
    let copy_to = min p.Sj.scan_to boundary in
    copy_phase copy_to;
    scan_phase ~skip:true (max p.Sj.scan_from (copy_to + 1))
  | Sj.Exact_size ->
    let copy_to = min p.Sj.scan_to (c + sizes.(c)) in
    copy_phase copy_to;
    stats.Stats.skipped <- stats.Stats.skipped + (p.Sj.scan_to - copy_to)

let scan_anc_partition ~mode ~posts ~sizes (p : Sj.partition) out stats =
  let boundary = p.Sj.boundary_post in
  let i = ref p.Sj.scan_from in
  while !i <= p.Sj.scan_to do
    stats.Stats.scanned <- stats.Stats.scanned + 1;
    if posts.(!i) > boundary then begin
      Int_col.append_unit out !i;
      stats.Stats.appended <- stats.Stats.appended + 1;
      incr i
    end
    else begin
      let hop =
        match mode with
        | Sj.No_skipping -> 0
        | Sj.Skipping | Sj.Estimation -> max 0 (posts.(!i) - !i)
        | Sj.Exact_size -> sizes.(!i)
      in
      let hop = min hop (p.Sj.scan_to - !i) in
      stats.Stats.skipped <- stats.Stats.skipped + hop;
      i := !i + hop + 1
    end
  done

(* Load-balanced contiguous chunking: partition [k] costs roughly its scan
   length (the nodes the worker will touch), not 1, so boundaries are cut
   where the scan-length prefix sum crosses the per-worker quota.  A
   single huge partition no longer rides with half the document while the
   other workers idle.  Slices stay contiguous so the concatenated
   per-worker outputs remain in document order; empty slices are
   harmless. *)
let weighted_boundaries parts workers =
  let n = Array.length parts in
  let cum = Array.make (n + 1) 0 in
  for k = 0 to n - 1 do
    let p = parts.(k) in
    cum.(k + 1) <- cum.(k) + (max 0 (p.Sj.scan_to - p.Sj.scan_from + 1) + 1)
  done;
  let total = cum.(n) in
  let bounds = Array.make (workers + 1) n in
  bounds.(0) <- 0;
  for w = 1 to workers - 1 do
    let quota = w * total / workers in
    let k = ref bounds.(w - 1) in
    while !k < n && cum.(!k) < quota do incr k done;
    bounds.(w) <- !k
  done;
  bounds

let run_partitions exec scan partitions =
  let parts = Array.of_list partitions in
  let n = Array.length parts in
  if n = 0 then Nodeseq.empty
  else begin
    let workers = max 1 (min exec.Exec.domains n) in
    let bounds = weighted_boundaries parts workers in
    (* each worker owns a private result buffer and a private counter set;
       the counters are merged into the context after the join (they are
       plain sums, so the merged totals equal a serial run's).

       The per-worker slices run as one batch on the shared domain pool
       instead of spawning fresh domains per step: the submitting thread
       helps execute the batch, and Pool.submit re-raises the first
       worker exception only after every in-flight slice has settled —
       an aborting coordinator can neither leak a domain nor swallow a
       worker's failure. *)
    let results = Array.init workers (fun _ -> (Int_col.create ~capacity:256 (), Stats.create ())) in
    Morsel.Pool.submit (Morsel.Pool.shared ()) ~width:workers ~n:workers (fun w ->
        let out, stats = results.(w) in
        for k = bounds.(w) to bounds.(w + 1) - 1 do
          (* the cancellation hook must be domain-safe (see Exec): every
             worker polls it between partition scans *)
          Exec.checkpoint exec;
          scan parts.(k) out stats
        done);
    Array.iter (fun (_, stats) -> Stats.add exec.Exec.stats stats) results;
    let total = Array.fold_left (fun acc (c, _) -> acc + Int_col.length c) 0 results in
    (* zero-copy merge: blit each worker's live prefix straight into the
       result array — no intermediate to_array copies *)
    let out = Array.make total 0 in
    let pos = ref 0 in
    Array.iter
      (fun (col, _) ->
        Int_col.blit_into col out ~dst_pos:!pos;
        pos := !pos + Int_col.length col)
      results;
    Nodeseq.of_sorted_array out
  end

let default_domains () = Exec.default_domains ()

let desc ?exec doc context =
  let exec = ensure_exec exec in
  let mode = exec.Exec.mode in
  (* prune on the coordinating thread so [pruned] is counted exactly once,
     like the serial join does; the partitions are then built directly from
     the pruned staircase — the O(n) prune runs exactly once per join *)
  let context = Sj.prune_desc ~exec doc context in
  let partitions = Sj.desc_partitions_pruned doc context in
  let posts = Doc.post_array doc in
  let sizes = Doc.size_array doc in
  let kinds = Doc.kind_array doc in
  run_partitions exec (scan_desc_partition ~mode ~doc ~posts ~sizes ~kinds) partitions

let anc ?exec doc context =
  let exec = ensure_exec exec in
  let mode = exec.Exec.mode in
  let context = Sj.prune_anc ~exec doc context in
  let partitions = Sj.anc_partitions_pruned doc context in
  let posts = Doc.post_array doc in
  let sizes = Doc.size_array doc in
  run_partitions exec (scan_anc_partition ~mode ~posts ~sizes) partitions
