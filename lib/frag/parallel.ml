module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Int_col = Scj_bat.Int_col
module Stats = Scj_stats.Stats
module Exec = Scj_trace.Exec
module Sj = Scj_core.Staircase

let ensure_exec = function None -> Exec.make () | Some e -> e

(* Evaluate one descendant partition into a private buffer.  The counter
   accounting mirrors Scj_core.Staircase.desc line by line, so the merged
   per-worker counters are indistinguishable from a serial run. *)
let scan_desc_partition ~mode ~posts ~sizes ~kinds (p : Sj.partition) out stats =
  let append i =
    if kinds.(i) <> Doc.Attribute then begin
      Int_col.append_unit out i;
      stats.Stats.appended <- stats.Stats.appended + 1
    end
  in
  let boundary = p.Sj.boundary_post in
  let c = p.Sj.scan_from - 1 in
  let scan_phase ~skip from =
    let i = ref from in
    let break = ref false in
    while (not !break) && !i <= p.Sj.scan_to do
      stats.Stats.scanned <- stats.Stats.scanned + 1;
      if posts.(!i) < boundary then begin
        append !i;
        incr i
      end
      else if skip then begin
        stats.Stats.skipped <- stats.Stats.skipped + (p.Sj.scan_to - !i);
        break := true
      end
      else incr i
    done
  in
  let copy_phase upto =
    for i = p.Sj.scan_from to upto do
      stats.Stats.copied <- stats.Stats.copied + 1;
      append i
    done
  in
  match mode with
  | Sj.No_skipping -> scan_phase ~skip:false p.Sj.scan_from
  | Sj.Skipping -> scan_phase ~skip:true p.Sj.scan_from
  | Sj.Estimation ->
    let copy_to = min p.Sj.scan_to boundary in
    copy_phase copy_to;
    scan_phase ~skip:true (max p.Sj.scan_from (copy_to + 1))
  | Sj.Exact_size ->
    let copy_to = min p.Sj.scan_to (c + sizes.(c)) in
    copy_phase copy_to;
    stats.Stats.skipped <- stats.Stats.skipped + (p.Sj.scan_to - copy_to)

let scan_anc_partition ~mode ~posts ~sizes (p : Sj.partition) out stats =
  let boundary = p.Sj.boundary_post in
  let i = ref p.Sj.scan_from in
  while !i <= p.Sj.scan_to do
    stats.Stats.scanned <- stats.Stats.scanned + 1;
    if posts.(!i) > boundary then begin
      Int_col.append_unit out !i;
      stats.Stats.appended <- stats.Stats.appended + 1;
      incr i
    end
    else begin
      let hop =
        match mode with
        | Sj.No_skipping -> 0
        | Sj.Skipping | Sj.Estimation -> max 0 (posts.(!i) - !i)
        | Sj.Exact_size -> sizes.(!i)
      in
      let hop = min hop (p.Sj.scan_to - !i) in
      stats.Stats.skipped <- stats.Stats.skipped + hop;
      i := !i + hop + 1
    end
  done

let run_partitions exec scan partitions =
  let parts = Array.of_list partitions in
  let n = Array.length parts in
  if n = 0 then Nodeseq.empty
  else begin
    let workers = max 1 (min exec.Exec.domains n) in
    (* static round-robin-free chunking: worker w owns a contiguous slice
       of partitions so its output is a contiguous slice of the result *)
    let slice w =
      let per = n / workers and extra = n mod workers in
      let start = (w * per) + min w extra in
      let len = per + if w < extra then 1 else 0 in
      (start, len)
    in
    (* each worker owns a private result buffer and a private counter set;
       the counters are merged into the context after the join (they are
       plain sums, so the merged totals equal a serial run's) *)
    let work w =
      let start, len = slice w in
      let out = Int_col.create ~capacity:256 () in
      let stats = Stats.create () in
      for k = start to start + len - 1 do
        scan parts.(k) out stats
      done;
      (out, stats)
    in
    let results =
      if workers = 1 then [| work 0 |]
      else begin
        let handles = Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> work (w + 1))) in
        let first = work 0 in
        Array.append [| first |] (Array.map Domain.join handles)
      end
    in
    Array.iter (fun (_, stats) -> Stats.add exec.Exec.stats stats) results;
    let total = Array.fold_left (fun acc (c, _) -> acc + Int_col.length c) 0 results in
    let out = Array.make total 0 in
    let pos = ref 0 in
    Array.iter
      (fun (col, _) ->
        let a = Int_col.to_array col in
        Array.blit a 0 out !pos (Array.length a);
        pos := !pos + Array.length a)
      results;
    Nodeseq.of_sorted_array out
  end

let default_domains () = Exec.default_domains ()

let desc ?exec doc context =
  let exec = ensure_exec exec in
  let mode = exec.Exec.mode in
  (* prune on the coordinating thread so [pruned] is counted exactly once,
     like the serial join does; the partitions of a pruned staircase are
     the staircase itself, so the inner re-prune is a no-op *)
  let context = Sj.prune_desc ~exec doc context in
  let partitions = Sj.desc_partitions doc context in
  let posts = Doc.post_array doc in
  let sizes = Doc.size_array doc in
  let kinds = Doc.kind_array doc in
  run_partitions exec (scan_desc_partition ~mode ~posts ~sizes ~kinds) partitions

let anc ?exec doc context =
  let exec = ensure_exec exec in
  let mode = exec.Exec.mode in
  let context = Sj.prune_anc ~exec doc context in
  let partitions = Sj.anc_partitions doc context in
  let posts = Doc.post_array doc in
  let sizes = Doc.size_array doc in
  run_partitions exec (scan_anc_partition ~mode ~posts ~sizes) partitions
