module Doc = Scj_encoding.Doc
module Error = Scj_error.Error
module Buffer_pool = Scj_pager.Buffer_pool
module Paged_doc = Scj_pager.Paged_doc
module Store = Scj_store.Store

type entry = {
  eid : string;
  edb : Db.t;
  base_page : int;
  mutable epaged : Paged_doc.t option;  (* set once during construction *)
}

type t = {
  pool : Buffer_pool.t;
  entries : entry array;  (* sorted by id: document order across the corpus *)
}

(* A document's slice of the shared address space: the store's real page
   file when the geometry matches (zero re-encoding, faults are
   checksum-verified preads), an in-memory page image otherwise
   (page_ints mismatch, pending mutations, or no store at all). *)
let component_store ~page_ints ?fault_latency db =
  match Db.store db with
  | Some s when Store.page_ints s = page_ints && Store.pending_mutations s = 0 ->
    Store.pool_store s
  | Some _ | None -> Paged_doc.image_store ~page_ints ?fault_latency (Db.doc db)

let default_capacity total_pages = max 24 (total_pages / 10)

let of_dbs ?(policy = Buffer_pool.Lru) ?(page_ints = 1024) ?(stripes = 1) ?capacity
    ?fault_latency dbs =
  if dbs = [] then invalid_arg "Catalog.of_dbs: need at least one document";
  let dbs = List.sort (fun (a, _) (b, _) -> String.compare a b) dbs in
  let rec check_dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Catalog.of_dbs: duplicate document id %S" a);
      check_dup rest
    | _ -> ()
  in
  check_dup dbs;
  let parts = List.map (fun (_, db) -> component_store ~page_ints ?fault_latency db) dbs in
  let combined, bases = Buffer_pool.Store.concat parts in
  let capacity =
    match capacity with
    | Some c -> c
    | None -> default_capacity (Buffer_pool.Store.n_pages combined)
  in
  (* the shared pool must hold one query's working set per stripe *)
  let stripes = max 1 (min stripes (capacity / 3)) in
  let pool = Buffer_pool.create ~policy ~stripes ~capacity combined in
  let entries =
    List.map2
      (fun (id, db) base_page ->
        let doc = Db.doc db in
        let paged =
          Paged_doc.attach ~base_page ~n:(Doc.n_nodes doc) ~height:(Doc.height doc) pool
        in
        Db.attach_paged db paged;
        { eid = id; edb = db; base_page; epaged = Some paged })
      dbs bases
  in
  { pool; entries = Array.of_list entries }

let of_docs ?policy ?page_ints ?stripes ?capacity ?fault_latency ?strategy ?domains docs =
  of_dbs ?policy ?page_ints ?stripes ?capacity ?fault_latency
    (List.map (fun (id, doc) -> (id, Db.of_doc ?strategy ?domains doc)) docs)

(* A directory entry is a document when it is a store directory (id =
   the directory name) or an [.xml]/[.scj] file (id = the basename
   without its extension). *)
let id_of_name path name =
  let full = Filename.concat path name in
  if Sys.is_directory full then if Db.is_store_dir full then Some (name, full) else None
  else if Filename.check_suffix name ".xml" then
    Some (Filename.chop_suffix name ".xml", full)
  else if Filename.check_suffix name ".scj" then
    Some (Filename.chop_suffix name ".scj", full)
  else None

let open_dir ?policy ?page_ints ?stripes ?capacity ?fault_latency ?strategy ?domains dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Error.io (Printf.sprintf "no such document directory: %s" dir))
  else begin
    let names = Sys.readdir dir in
    Array.sort String.compare names;
    let members = List.filter_map (id_of_name dir) (Array.to_list names) in
    if members = [] then
      Error (Error.io (Printf.sprintf "%s: no documents (store dirs, .xml or .scj files)" dir))
    else begin
      let rec open_all acc = function
        | [] -> Ok (List.rev acc)
        | (id, path) :: rest -> (
          match Db.open_ ?strategy ?domains path with
          | Ok db -> open_all ((id, db) :: acc) rest
          | Error e ->
            List.iter (fun (_, db) -> Db.close db) acc;
            Error (Error.io (Printf.sprintf "%s: %s" id (Error.to_string e))))
      in
      match open_all [] members with
      | Error _ as e -> e
      | Ok dbs -> (
        match of_dbs ?policy ?page_ints ?stripes ?capacity ?fault_latency dbs with
        | catalog -> Ok catalog
        | exception Invalid_argument msg ->
          List.iter (fun (_, db) -> Db.close db) dbs;
          Error (Error.io msg))
    end
  end

let pool t = t.pool

let n_docs t = Array.length t.entries

let ids t = Array.to_list (Array.map (fun e -> e.eid) t.entries)

let find t id =
  let n = Array.length t.entries in
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let e = t.entries.(mid) in
      let c = String.compare id e.eid in
      if c = 0 then Some e else if c < 0 then go lo mid else go (mid + 1) hi
    end
  in
  go 0 n

let db t id = Option.map (fun e -> e.edb) (find t id)

let paged t id = Option.bind (find t id) (fun e -> e.epaged)

let base_page t id = Option.map (fun e -> e.base_page) (find t id)

let to_list t = Array.to_list (Array.map (fun e -> (e.eid, e.edb)) t.entries)

let close t = Array.iter (fun e -> Db.close e.edb) t.entries
