(** One handle over a document, however it is stored — the unified
    session API.

    [Db.open_ path] accepts any of the three document sources the tools
    used to open through three different code paths:

    - a {e store directory} (contains [pages.scj]): opened through
      {!Scj_store.Store.open_} — WAL recovery, pending-mutation replay,
      a file-backed buffer pool with zero re-encoding;
    - a {e codec file} ([SCJDOC1] magic): decoded with
      {!Scj_encoding.Codec};
    - anything else: parsed as XML.

    The handle memoizes the derived artifacts (paged rendition, planner
    session) and keeps them consistent across {!apply}: a mutation
    installs the new rendition, drops the paged memo (readers holding
    the old rendition keep it — renditions are immutable) and evolves
    the session incrementally ({!Scj_xpath.Eval.evolve}).

    Concurrency: the handle itself is thread-safe (memos under a lock),
    but the {!session} it hands out carries mutable caches and must stay
    on one domain.  The query service ({!Scj_server.Server}) builds
    per-worker sessions and uses the [Db] only for {!apply} and the
    initial rendition. *)

module Doc = Scj_encoding.Doc
module Update = Scj_encoding.Update

type t

(** [open_ ?strategy ?domains path] opens a store directory, a codec
    file, or an XML file.  Errors: [Io] (missing path), [Parse] (bad
    XML), [Corrupt]/[Incomplete]/[Recovery]/[Validation] from the store
    layer. *)
val open_ :
  ?strategy:Scj_xpath.Eval.strategy -> ?domains:int -> string -> (t, Scj_error.Error.t) result

(** Wrap an in-memory document (no backing; {!apply} mutates only the
    handle). *)
val of_doc : ?strategy:Scj_xpath.Eval.strategy -> ?domains:int -> Doc.t -> t

(** Wrap an already-open store (ownership transfers: {!close} closes
    it). *)
val of_store :
  ?strategy:Scj_xpath.Eval.strategy ->
  ?domains:int ->
  Scj_store.Store.t ->
  (t, Scj_error.Error.t) result

(** [true] iff [path] looks like a store directory. *)
val is_store_dir : string -> bool

(** The current document rendition. *)
val doc : t -> Doc.t

(** The store behind the handle, when it is store-backed. *)
val store : t -> Scj_store.Store.t option

(** The strategy the handle was opened with, if any. *)
val strategy : t -> Scj_xpath.Eval.strategy option

(** The strong dataguide (path summary) for the current rendition.
    Store-backed handles serve {!Scj_store.Store.guide} (deserialized
    from the persisted extent, no document rescan); others build once
    and maintain the memo incrementally across {!apply}.  The planner
    {!session} is seeded with this guide. *)
val guide : t -> Scj_guide.Guide.t

(** One human-readable line about the backing ("durable store, zero
    re-encoding", …). *)
val describe : t -> string

(** The paged rendition of the current document, memoized: file-backed
    for a store, an in-memory page image otherwise.  [page_ints]
    (default 1024) applies to in-memory images only. *)
val paged : ?page_ints:int -> ?stripes:int -> ?capacity:int -> t -> Scj_pager.Paged_doc.t

(** Replace the paged memo — for callers that built a special rendition
    (fault-latency simulation, tiny pages). *)
val attach_paged : t -> Scj_pager.Paged_doc.t -> unit

(** The planner session for the current document, memoized.  Built over
    the paged rendition only if one is already materialized.  Not safe
    to share across domains. *)
val session : t -> Scj_xpath.Eval.session

(** [query t src] parses and evaluates [src] against the current
    rendition — [Db.open_ path] + [Db.query db q] is the whole
    quickstart. *)
val query :
  ?exec:Scj_trace.Exec.t ->
  ?context:Scj_encoding.Nodeseq.t ->
  t ->
  string ->
  (Scj_encoding.Nodeseq.t, Scj_error.Error.t) result

(** [apply t op] commits a structural update: durably (WAL-logged
    through the store) when store-backed, in memory otherwise.  On
    success the handle's rendition, paged memo and session are brought
    forward. *)
val apply : t -> Update.op -> (Update.applied, Scj_error.Error.t) result

(** Committed mutations the backing store has not yet folded into its
    page file (0 for non-store handles). *)
val pending_mutations : t -> int

(** Fold pending mutations into the store's page file (no-op for
    non-store handles).  See {!Scj_store.Store.checkpoint} for the
    quiescence requirement. *)
val checkpoint : t -> unit

val close : t -> unit
