module Doc = Scj_encoding.Doc
module Codec = Scj_encoding.Codec
module Update = Scj_encoding.Update
module Nodeseq = Scj_encoding.Nodeseq
module Error = Scj_error.Error
module Paged_doc = Scj_pager.Paged_doc
module Store = Scj_store.Store
module Eval = Scj_xpath.Eval
module Guide = Scj_guide.Guide

type backing = Memory | File of string | Stored of Store.t

type t = {
  strategy : Eval.strategy option;
  domains : int option;
  backing : backing;
  lock : Mutex.t;  (* guards the memos *)
  mutable doc : Doc.t;
  mutable paged : Paged_doc.t option;
  mutable session : Eval.session option;
  mutable guide : Guide.t option;  (* non-store backings only; stores keep their own memo *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let make ?strategy ?domains backing doc =
  { strategy; domains; backing; lock = Mutex.create (); doc; paged = None; session = None;
    guide = None }

let of_doc ?strategy ?domains doc = make ?strategy ?domains Memory doc

let of_store ?strategy ?domains store =
  match Store.doc store with
  | doc -> Ok (make ?strategy ?domains (Stored store) doc)
  | exception Store.Corrupt msg -> Error (Error.corrupt msg)

let is_store_dir path =
  Sys.file_exists path && Sys.is_directory path
  && Sys.file_exists (Filename.concat path Store.pages_file)

let open_ ?strategy ?domains path =
  if not (Sys.file_exists path) then Error (Error.io (Printf.sprintf "no such document: %s" path))
  else if Sys.is_directory path then
    if Sys.file_exists (Filename.concat path Store.pages_file) then
      Result.bind (Store.open_ path) (of_store ?strategy ?domains)
    else Error (Error.io (Printf.sprintf "%s is a directory but not a store (no %s)" path Store.pages_file))
  else begin
    let probe =
      In_channel.with_open_bin path (fun ic ->
          really_input_string ic (min (String.length Codec.magic) (In_channel.length ic |> Int64.to_int)))
    in
    if String.equal probe Codec.magic then
      match Codec.read_file path with
      | Ok doc -> Ok (make ?strategy ?domains (File path) doc)
      | Error e -> Error (Error.corrupt e)
    else begin
      let content = In_channel.with_open_bin path In_channel.input_all in
      match Doc.of_string content with
      | Ok doc -> Ok (make ?strategy ?domains (File path) doc)
      | Error e -> Error (Error.parse e)
    end
  end

let doc t = with_lock t (fun () -> t.doc)

let store t = match t.backing with Stored s -> Some s | Memory | File _ -> None

let strategy t = t.strategy

(* Store-backed handles read the persisted guide extent (or its
   rebuilt-in-memory stand-in); others build once over the current
   rendition and maintain the memo across [apply]. *)
let guide_locked t =
  match t.backing with
  | Stored s -> Store.guide s
  | Memory | File _ ->
    (match t.guide with
     | Some g -> g
     | None ->
       let g = Guide.build t.doc in
       t.guide <- Some g;
       g)

let guide t = with_lock t (fun () -> guide_locked t)

let describe t =
  match t.backing with
  | Stored _ -> "durable store, zero re-encoding"
  | File path -> Printf.sprintf "encoded from %s" (Filename.basename path)
  | Memory -> "in-memory document"

(* pool sizing for non-store documents, mirroring Store's default *)
let default_capacity ~page_ints n =
  let pages_for ints = (ints + page_ints - 1) / page_ints in
  let pool_pages = pages_for n + pages_for (n + 1) + pages_for n in
  max 24 (pool_pages / 10)

let paged ?page_ints ?stripes ?capacity t =
  with_lock t (fun () ->
      match t.paged with
      | Some p -> p
      | None ->
        let p =
          match t.backing with
          | Stored s -> Store.paged ?stripes ?capacity s
          | Memory | File _ ->
            let page_ints = Option.value page_ints ~default:1024 in
            let capacity =
              match capacity with
              | Some c -> c
              | None -> default_capacity ~page_ints (Doc.n_nodes t.doc)
            in
            Paged_doc.load ~page_ints ?stripes ~capacity t.doc
        in
        t.paged <- Some p;
        p)

let attach_paged t p = with_lock t (fun () -> t.paged <- Some p)

(* The session is built over the paged rendition only when one is
   already materialized: asking a question must not silently build a
   buffer pool. *)
let session t =
  with_lock t (fun () ->
      match t.session with
      | Some s -> s
      | None ->
        (* seed the planner with the backing's guide so a store open
           never rescans the document for path statistics; a corrupt
           guide extent falls back to the planner's own lazy build *)
        let guide = try Some (guide_locked t) with Store.Corrupt _ -> None in
        let s = Eval.session ?strategy:t.strategy ?paged:t.paged ?domains:t.domains ?guide t.doc in
        t.session <- Some s;
        s)

let query ?exec ?context t src = Eval.run ?exec ?context (session t) src

let apply t op =
  with_lock t (fun () ->
      let result =
        match t.backing with
        | Stored s -> Store.apply s op
        | Memory | File _ -> Update.apply t.doc op
      in
      match result with
      | Error _ as e -> e
      | Ok applied ->
        let old_doc = t.doc in
        t.doc <- applied.Update.doc;
        t.guide <-
          Option.map
            (fun g ->
              Guide.update g ~old_doc ~doc:applied.Update.doc ~splice:applied.Update.splice
                ~delta:applied.Update.delta)
            t.guide;
        (* the paged memo belongs to the retired rendition; the session
           evolves incrementally (statistics patched, index spliced) *)
        t.paged <- None;
        t.session <- Option.map (fun s -> Eval.evolve s applied) t.session;
        Ok applied)

let pending_mutations t =
  match t.backing with Stored s -> Store.pending_mutations s | Memory | File _ -> 0

let checkpoint t = match t.backing with Stored s -> Store.checkpoint s | Memory | File _ -> ()

let close t = match t.backing with Stored s -> Store.close s | Memory | File _ -> ()
