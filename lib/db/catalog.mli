(** A directory of named documents behind one shared buffer pool — the
    multi-tenant layer over {!Db}.

    The staircase-join kernel makes one document fast; a server fleet
    hosts many.  A catalog opens every document of a directory (store
    directories, [.xml] and [.scj] files) as a {!Db.t} and lays all of
    their page extents into {e one} shared, size-bounded
    {!Scj_pager.Buffer_pool} ({!Scj_pager.Buffer_pool.Store.concat}):
    document [i]'s extents occupy pool pages
    [base_page_i .. base_page_i + pages_i), and each [Db] gets a
    {!Scj_pager.Paged_doc.attach} view of its own slice.  Store-backed
    documents whose page geometry matches are served straight off their
    page files (zero re-encoding, faults are checksum-verified preads);
    everything else is paged from an in-memory image.

    Because the pool is shared, one tenant's cold scan competes with
    every other tenant's working set — which is why the pool's
    scan-resistant {!Scj_pager.Buffer_pool.policy-Two_q} policy exists;
    pass [~policy] to choose it (the default stays
    {!Scj_pager.Buffer_pool.policy-Lru} for A/B comparison).

    Document ids are the directory-entry names (store directory name,
    or file basename without extension); the catalog orders them
    lexicographically — the {e document order} cross-corpus queries
    merge in.  The shared pool serves the open-time rendition of every
    document; later writes flow through the per-document rendition
    chains of {!Scj_server.Server}, never through the shared pool. *)

module Doc = Scj_encoding.Doc

type t

(** [open_dir dir] opens every document in [dir] — subdirectories that
    are stores, plus [.xml]/[.scj] files — behind one shared pool.
    [policy] (default [Lru]) selects the eviction policy; [page_ints]
    (default 1024) is the page size for in-memory images {e and} the
    geometry store-backed documents must match to be served off their
    page files; [capacity] (default ~10% of the corpus' pages, min 24)
    bounds the shared pool; [stripes] (default 1, clamped so each
    stripe keeps >= 3 frames) stripes its latches; [fault_latency]
    (seconds) applies to in-memory images only.  Errors: [Io] for a
    missing/empty directory or any member that fails to open (the
    message names the member). *)
val open_dir :
  ?policy:Scj_pager.Buffer_pool.policy ->
  ?page_ints:int ->
  ?stripes:int ->
  ?capacity:int ->
  ?fault_latency:float ->
  ?strategy:Scj_xpath.Eval.strategy ->
  ?domains:int ->
  string ->
  (t, Scj_error.Error.t) result

(** [of_dbs entries] builds a catalog over already-open handles
    [(id, db)].  Ids are sorted; each handle's paged memo is replaced
    with its shared-pool view ({!Db.attach_paged}).
    @raise Invalid_argument on an empty list or duplicate ids. *)
val of_dbs :
  ?policy:Scj_pager.Buffer_pool.policy ->
  ?page_ints:int ->
  ?stripes:int ->
  ?capacity:int ->
  ?fault_latency:float ->
  (string * Db.t) list ->
  t

(** [of_docs entries] — {!of_dbs} over fresh in-memory handles
    ({!Db.of_doc}); how tests and benches build a corpus without
    touching the file system. *)
val of_docs :
  ?policy:Scj_pager.Buffer_pool.policy ->
  ?page_ints:int ->
  ?stripes:int ->
  ?capacity:int ->
  ?fault_latency:float ->
  ?strategy:Scj_xpath.Eval.strategy ->
  ?domains:int ->
  (string * Doc.t) list ->
  t

(** The one pool every document's faults and hits land in. *)
val pool : t -> Scj_pager.Buffer_pool.t

val n_docs : t -> int

(** Document ids in document (lexicographic) order. *)
val ids : t -> string list

val db : t -> string -> Db.t option

(** The document's shared-pool view (same object the [Db]'s paged memo
    holds). *)
val paged : t -> string -> Scj_pager.Paged_doc.t option

(** First pool page of the document's extents. *)
val base_page : t -> string -> int option

(** [(id, db)] pairs in document order. *)
val to_list : t -> (string * Db.t) list

(** Close every member handle (the shared pool needs no teardown). *)
val close : t -> unit
