type file = {
  pread : pos:int -> Bytes.t -> int -> int -> int;
  pwrite : pos:int -> Bytes.t -> int -> int -> unit;
  fsync : unit -> unit;
  size : unit -> int;
  truncate : int -> unit;
  close : unit -> unit;
}

type t = {
  openf : path:string -> rw:bool -> create:bool -> file;
  exists : string -> bool;
  mkdir : string -> unit;
  remove : string -> unit;
}

(* OCaml's Unix module has no pread/pwrite, so positioned access is
   lseek+read under a per-file mutex — safe to share one [file] across
   the server's reader domains. *)
let real_file fd =
  let m = Mutex.create () in
  let with_lock f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  {
    pread =
      (fun ~pos buf off len ->
        with_lock (fun () ->
            ignore (Unix.lseek fd pos Unix.SEEK_SET);
            let total = ref 0 in
            let eof = ref false in
            while (not !eof) && !total < len do
              let r = Unix.read fd buf (off + !total) (len - !total) in
              if r = 0 then eof := true else total := !total + r
            done;
            !total));
    pwrite =
      (fun ~pos buf off len ->
        with_lock (fun () ->
            ignore (Unix.lseek fd pos Unix.SEEK_SET);
            let total = ref 0 in
            while !total < len do
              total := !total + Unix.write fd buf (off + !total) (len - !total)
            done));
    fsync = (fun () -> Unix.fsync fd);
    size = (fun () -> (Unix.fstat fd).Unix.st_size);
    truncate = (fun n -> with_lock (fun () -> Unix.ftruncate fd n));
    close = (fun () -> Unix.close fd);
  }

let real =
  {
    openf =
      (fun ~path ~rw ~create ->
        let flags = if rw then [ Unix.O_RDWR ] else [ Unix.O_RDONLY ] in
        let flags = if create then Unix.O_CREAT :: flags else flags in
        real_file (Unix.openfile path flags 0o644));
    exists = Sys.file_exists;
    mkdir = (fun p -> if not (Sys.file_exists p) then Unix.mkdir p 0o755);
    remove = (fun p -> if Sys.file_exists p then Sys.remove p);
  }
