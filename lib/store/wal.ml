(* Write-ahead log: an 8-byte magic header followed by a flat sequence of
   records

     [kind:8][txid:8][page:8][len:8][crc:8][payload: len bytes]

   (all integers little-endian; kind 1 = begin, 2 = page image with the
   target file-page index in [page], 3 = commit, 4 = logical mutation
   with a format-versioned payload; the CRC-32 covers the first 32 header
   bytes plus the payload).  Commit is the durability point: its record
   is fsynced before the caller touches the page file — redo-only, ARIES
   style.  Recovery replays the page images and logical mutations of
   committed transactions in commit order and discards everything from
   the first torn or corrupt record on, plus any transaction without a
   commit. *)

let header_magic = "SCJWAL01"

let header_bytes = String.length header_magic

let record_header_bytes = 40

(* sanity bound on a page-image payload: a torn length field must not
   make recovery attempt a huge allocation before the CRC check *)
let max_payload = 1 lsl 26

let kind_begin = 1

let kind_image = 2

let kind_commit = 3

let kind_mutation = 4

type t = { file : Io.file; mutable pos : int }

let set_int b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_int b off = Int64.to_int (Bytes.get_int64_le b off)

let attach file = { file; pos = file.Io.size () }

let append t ~kind ~txid ~page payload =
  let len = Bytes.length payload in
  let b = Bytes.create (record_header_bytes + len) in
  set_int b 0 kind;
  set_int b 8 txid;
  set_int b 16 page;
  set_int b 24 len;
  Bytes.blit payload 0 b record_header_bytes len;
  let crc = Crc32.update (Crc32.digest b ~pos:0 ~len:32) b ~pos:record_header_bytes ~len in
  set_int b 32 crc;
  t.file.Io.pwrite ~pos:t.pos b 0 (Bytes.length b);
  t.pos <- t.pos + Bytes.length b

let begin_ t ~txid = append t ~kind:kind_begin ~txid ~page:0 Bytes.empty

let page_image t ~txid ~page img = append t ~kind:kind_image ~txid ~page img

let mutation t ~txid payload = append t ~kind:kind_mutation ~txid ~page:0 payload

(* the fsync is the commit barrier: after it returns the transaction's
   redo images are durable *)
let commit t ~txid =
  append t ~kind:kind_commit ~txid ~page:0 Bytes.empty;
  t.file.Io.fsync ()

type recovery = {
  committed : int;
  replayed_pages : int;
  replayed_mutations : int;
  discarded : string option;
  committed_end : int;
}

let clean_recovery =
  {
    committed = 0;
    replayed_pages = 0;
    replayed_mutations = 0;
    discarded = None;
    committed_end = header_bytes;
  }

(* buffered record of an in-flight transaction *)
type pending = Image of int * Bytes.t | Mutation of Bytes.t

let recover ?(apply_mutation = fun _ -> ()) t ~apply =
  let size = t.file.Io.size () in
  let committed = ref 0 and replayed = ref 0 and replayed_mut = ref 0 in
  let committed_end = ref header_bytes in
  let discarded = ref None in
  let in_flight : (int, pending list ref) Hashtbl.t = Hashtbl.create 8 in
  if size = 0 then committed_end := 0
  else begin
    let hdr = Bytes.create header_bytes in
    let hlen = t.file.Io.pread ~pos:0 hdr 0 header_bytes in
    if hlen < header_bytes || not (String.equal (Bytes.to_string hdr) header_magic) then
      discarded := Some "WAL header torn or invalid; log discarded"
    else begin
      let pos = ref header_bytes in
      let stop = ref false in
      while not !stop do
        if !pos + record_header_bytes > size then begin
          if !pos < size then
            discarded :=
              Some (Printf.sprintf "torn record header at WAL offset %d; tail discarded" !pos);
          stop := true
        end
        else begin
          let h = Bytes.create record_header_bytes in
          ignore (t.file.Io.pread ~pos:!pos h 0 record_header_bytes);
          let kind = get_int h 0
          and txid = get_int h 8
          and page = get_int h 16
          and len = get_int h 24
          and crc = get_int h 32 in
          if kind < kind_begin || kind > kind_mutation || len < 0 || len > max_payload || page < 0
          then begin
            discarded :=
              Some (Printf.sprintf "corrupt record at WAL offset %d; tail discarded" !pos);
            stop := true
          end
          else if !pos + record_header_bytes + len > size then begin
            discarded :=
              Some (Printf.sprintf "torn page image at WAL offset %d; tail discarded" !pos);
            stop := true
          end
          else begin
            let payload = Bytes.create len in
            ignore (t.file.Io.pread ~pos:(!pos + record_header_bytes) payload 0 len);
            let crc' = Crc32.update (Crc32.digest h ~pos:0 ~len:32) payload ~pos:0 ~len in
            if crc' <> crc then begin
              discarded :=
                Some
                  (Printf.sprintf "checksum mismatch in record at WAL offset %d; tail discarded"
                     !pos);
              stop := true
            end
            else begin
              (if kind = kind_begin then Hashtbl.replace in_flight txid (ref [])
               else
                 match Hashtbl.find_opt in_flight txid with
                 | Some records ->
                   if kind = kind_image then records := Image (page, payload) :: !records
                   else if kind = kind_mutation then records := Mutation payload :: !records
                   else begin
                     (* commit: replay this transaction's records in order *)
                     List.iter
                       (function
                         | Image (page, img) ->
                           apply ~page img;
                           incr replayed
                         | Mutation payload ->
                           apply_mutation payload;
                           incr replayed_mut)
                       (List.rev !records);
                     Hashtbl.remove in_flight txid;
                     incr committed;
                     committed_end := !pos + record_header_bytes + len
                   end
                 | None ->
                   discarded :=
                     Some
                       (Printf.sprintf
                          "record for unknown transaction %d at WAL offset %d; tail discarded"
                          txid !pos);
                   stop := true);
              pos := !pos + record_header_bytes + len
            end
          end
        end
      done;
      let uncommitted = Hashtbl.length in_flight in
      if uncommitted > 0 && !discarded = None then
        discarded := Some (Printf.sprintf "%d uncommitted transaction(s) discarded" uncommitted)
    end
  end;
  {
    committed = !committed;
    replayed_pages = !replayed;
    replayed_mutations = !replayed_mut;
    discarded = !discarded;
    committed_end = !committed_end;
  }

(* checkpoint: everything the log protected has been applied and fsynced
   to the page file, so reset the log to its bare header *)
let truncate t =
  t.file.Io.truncate header_bytes;
  t.file.Io.pwrite ~pos:0 (Bytes.of_string header_magic) 0 header_bytes;
  t.file.Io.fsync ();
  t.pos <- header_bytes

(* trim to the end of the last committed transaction: keeps the records
   recovery accepted (a store with pending logical mutations must keep
   its log) while dropping a torn tail so fresh appends extend a valid
   prefix *)
let trim t ~pos =
  let pos = max pos header_bytes in
  if pos = header_bytes then truncate t
  else begin
    t.file.Io.truncate pos;
    t.file.Io.fsync ();
    t.pos <- pos
  end
