(** Write-ahead log with redo-only (ARIES-style) recovery.

    Record format (integers little-endian, CRC-32 over the first 32
    header bytes plus the payload):

    {v [kind:8][txid:8][page:8][len:8][crc:8][payload: len bytes] v}

    with kinds [1 = begin], [2 = page image] (target file-page index in
    [page]), [3 = commit], [4 = logical mutation] (format-versioned
    payload, see [Scj_encoding.Update.encode]).  {!commit} fsyncs — the
    durability barrier: page-file writes happen only after the covering
    transaction's commit record is on disk, so {!recover} can always
    redo them.  Recovery replays committed transactions in commit order
    and discards the tail from the first torn or corrupt record, plus
    any uncommitted transaction. *)

type t

(** Attach to an open log file; appends go at the current end.  Call
    {!truncate} (fresh store) or {!recover} + {!truncate}/{!trim}
    (reopen) before appending. *)
val attach : Io.file -> t

val begin_ : t -> txid:int -> unit

(** [page_image t ~txid ~page img] logs the full after-image of file
    page [page] (data plus checksum trailer, exactly the bytes the page
    file will hold). *)
val page_image : t -> txid:int -> page:int -> Bytes.t -> unit

(** [mutation t ~txid payload] logs a logical mutation record — a
    structural update expressed against the document encoding rather
    than as page images.  Replayed (in order, interleaved with page
    images of the same transaction) at {!recover} via
    [apply_mutation]. *)
val mutation : t -> txid:int -> Bytes.t -> unit

(** Append the commit record and fsync — after return the transaction is
    durable. *)
val commit : t -> txid:int -> unit

type recovery = {
  committed : int;  (** transactions replayed *)
  replayed_pages : int;  (** page images written back *)
  replayed_mutations : int;  (** logical mutation records replayed *)
  discarded : string option;
      (** diagnosis when a torn/corrupt tail or uncommitted transaction
          was discarded; [None] for a clean log *)
  committed_end : int;
      (** file offset one past the last committed transaction's commit
          record — the position {!trim} should cut at to keep exactly
          the accepted prefix *)
}

val clean_recovery : recovery

(** [recover t ~apply] scans the log, calling [apply ~page img] for each
    page image and [apply_mutation payload] for each logical mutation of
    each committed transaction, in commit order (records of one
    transaction replay in append order).  Never raises on a corrupt
    log — corruption terminates the scan and is reported in
    [discarded].  Caller must fsync the applied pages and then
    {!truncate} (no mutations outstanding) or {!trim} (mutations must
    stay logged until the next checkpoint). *)
val recover :
  ?apply_mutation:(Bytes.t -> unit) -> t -> apply:(page:int -> Bytes.t -> unit) -> recovery

(** Reset the log to its bare header and fsync — the checkpoint
    operation, valid once the protected pages are durably applied. *)
val truncate : t -> unit

(** [trim t ~pos] truncates the log to [pos] (clamped to the header) and
    fsyncs: drops a torn tail and uncommitted transactions while keeping
    the committed prefix — used on reopen when logical mutations are
    still pending, so they survive the next crash too. *)
val trim : t -> pos:int -> unit
