(** Write-ahead log with redo-only (ARIES-style) recovery.

    Record format (integers little-endian, CRC-32 over the first 32
    header bytes plus the payload):

    {v [kind:8][txid:8][page:8][len:8][crc:8][payload: len bytes] v}

    with kinds [1 = begin], [2 = page image] (target file-page index in
    [page]), [3 = commit].  {!commit} fsyncs — the durability barrier:
    page-file writes happen only after the covering transaction's commit
    record is on disk, so {!recover} can always redo them.  Recovery
    replays committed transactions in commit order and discards the tail
    from the first torn or corrupt record, plus any uncommitted
    transaction. *)

type t

(** Attach to an open log file; appends go at the current end.  Call
    {!truncate} (fresh store) or {!recover} + {!truncate} (reopen)
    before appending. *)
val attach : Io.file -> t

val begin_ : t -> txid:int -> unit

(** [page_image t ~txid ~page img] logs the full after-image of file
    page [page] (data plus checksum trailer, exactly the bytes the page
    file will hold). *)
val page_image : t -> txid:int -> page:int -> Bytes.t -> unit

(** Append the commit record and fsync — after return the transaction is
    durable. *)
val commit : t -> txid:int -> unit

type recovery = {
  committed : int;  (** transactions replayed *)
  replayed_pages : int;  (** page images written back *)
  discarded : string option;
      (** diagnosis when a torn/corrupt tail or uncommitted transaction
          was discarded; [None] for a clean log *)
}

val clean_recovery : recovery

(** [recover t ~apply] scans the log, calling [apply ~page img] for each
    page image of each committed transaction, in commit order.  Never
    raises on a corrupt log — corruption terminates the scan and is
    reported in [discarded].  Caller must fsync the applied pages and
    then {!truncate}. *)
val recover : t -> apply:(page:int -> Bytes.t -> unit) -> recovery

(** Reset the log to its bare header and fsync — the checkpoint
    operation, valid once the protected pages are durably applied. *)
val truncate : t -> unit
