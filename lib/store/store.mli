(** The durable document store: real page files behind the buffer pool.

    A store is a directory holding a page file and a write-ahead log:

    {v
      pages.scj   [superblock | post | attr_prefix | size | meta | guide]
      wal.scj     begin / page-image / mutation / commit records (see Wal)
    v}

    Every file page has the same stride — [page_ints * 8] data bytes
    plus an 8-byte CRC-32 trailer.  File page 0 is the superblock
    (format magic/version and the extent geometry); the three column
    extents follow with exactly the page-aligned geometry
    {!Scj_pager.Paged_doc.attach} expects, so pool page [p] is file page
    [p + 1] and a {!paged} rendition serves queries with {e zero
    re-encoding}: every buffer-pool fault is a checksum-verified pread.
    The meta extent holds the non-columnar remainder of the document
    (level/parent/kind columns, tag dictionary, text contents) used only
    by {!doc}.

    Durability: {!create} logs each extent as a WAL transaction (commit
    = fsync barrier), applies the images to the page file, fsyncs it and
    truncates the log — so a crash at {e any} point either leaves a log
    that {!open_} replays to the complete store, or no committed
    superblock, which {!open_} reports as a clean {!Scj_error.Error.Incomplete}.
    Never a half-readable store.

    Writes: {!apply} commits a structural update as a logical WAL record
    (format version 2); the page file lags behind until {!checkpoint}
    rewrites it as one atomic image transaction.  On reopen, {!open_}
    replays pending mutations on top of the base rendition — unless a
    committed checkpoint's superblock image already folded them in.

    Format version 3 appends the serialized strong dataguide
    ({!Scj_guide.Guide}) as a page-aligned, CRC-trailed extent after
    meta, so {!guide} reopens without rescanning the document.
    Pre-guide (v1/v2) stores open unchanged: the guide is rebuilt
    lazily (one banner line on stderr) and the next {!checkpoint}
    upgrades the file in place. *)

(** Raised when a checksum, a short read, or an inconsistent recovered
    document proves the store is lying — distinct from the clean
    [Error _] results of {!open_}.  Raised lazily: page faults verify on
    read, so a corrupt page surfaces when a query first touches it. *)
exception Corrupt of string

type t

(** The page-file name inside a store directory ("pages.scj") — the
    marker callers probe to detect a store. *)
val pages_file : string

(** [create ?io ?page_ints ?guide ~path doc] builds a store for [doc] at
    directory [path] (created if missing; an existing store there is
    overwritten) and reopens it.  [page_ints] is the page payload in
    integers (default 1024 ≈ 8 KB pages).  [guide] (default [true])
    includes the dataguide extent; [~guide:false] writes a bona-fide
    pre-guide (version-2) store — the compatibility fixture for
    exercising the lazy-rebuild path.
    @raise Invalid_argument if [doc] fails validation or [page_ints] is
    out of range.
    @raise Corrupt if the just-written store fails its own reopen. *)
val create : ?io:Io.t -> ?page_ints:int -> ?guide:bool -> path:string -> Scj_encoding.Doc.t -> t

(** [open_ ?io path] runs WAL recovery (replaying committed page images
    and collecting committed logical mutations, discarding torn tails),
    resets or trims the log, verifies the superblock, and replays
    pending mutations.  Errors: [Io] (no store there), [Incomplete]
    (creation never committed), [Validation] (unsupported format
    version), [Corrupt] (the store lies), [Recovery] (the log could not
    be replayed).  It never invents a document. *)
val open_ : ?io:Io.t -> string -> (t, Scj_error.Error.t) result

(** What recovery found when this handle was opened. *)
val last_recovery : t -> Wal.recovery

(** [apply t op] validates [op] against the current rendition, commits
    it as a logical WAL transaction (the commit fsync is the durability
    barrier) and installs the new rendition.  The page file is untouched
    until {!checkpoint}.  Serialized with every other accessor on the
    handle's lock: one writer at a time. *)
val apply : t -> Scj_encoding.Update.op -> (Scj_encoding.Update.applied, Scj_error.Error.t) result

(** Committed mutations not yet folded into the page file. *)
val pending_mutations : t -> int

(** The paged rendition of the {e current} document, memoized.  On a
    clean store this is a buffer pool straight over the page file — one
    pool per store, shared by all readers.  With pending mutations the
    page file is stale, so the current rendition is paged from an
    in-memory image instead; each {!apply} drops the memo (readers
    holding the previous rendition keep it).  [stripes] (default 8) and
    [capacity] (default [max 24 (pool_pages/10)]) apply per
    memoization. *)
val paged : ?stripes:int -> ?capacity:int -> t -> Scj_pager.Paged_doc.t

(** The memoized pool behind {!paged} — on a clean store its hit/fault
    stats are real page-file reads. *)
val pool : t -> Scj_pager.Buffer_pool.t

(** The page file's column extents as a raw buffer-pool store (every
    fetch a checksum-verified pread) — the hook a multi-document catalog
    uses to put several stores behind {e one} shared pool
    ({!Scj_pager.Buffer_pool.Store.concat}).  Describes the durable
    {e base} rendition: with pending mutations the extents lag the
    current document, so catalogs fall back to an in-memory image. *)
val pool_store : t -> Scj_pager.Buffer_pool.Store.t

(** Materialize the current in-memory document (post + meta extents,
    read directly and checksum-verified, {e not} through the buffer
    pool — pool stats stay pure query traffic — plus any pending
    mutations).  Memoized.
    @raise Corrupt on checksum mismatch or failed validation. *)
val doc : t -> Scj_encoding.Doc.t

(** Checksum-walk every page of the file.  [Error] carries the first
    mismatch as {!Scj_error.Error.Corrupt}.  Note this checks the
    durable {e base} rendition; pending mutations live in the WAL. *)
val verify : t -> (unit, Scj_error.Error.t) result

(** The store's strong dataguide (path summary), memoized.  On a clean
    version-3 store it deserializes straight from the guide extent — no
    document rescan.  A pre-guide store, a corrupt guide extent, or a
    base rendition lagging pending mutations rebuilds from the current
    document instead (one stderr banner in the first two cases); the
    next {!checkpoint} persists the rebuilt guide.  Once materialized,
    {!apply} maintains the memo incrementally across mutations.
    @raise Corrupt if reading the extent hits a checksum mismatch. *)
val guide : t -> Scj_guide.Guide.t

(** Fold pending mutations into the page file.  Clean store: fsync +
    reset the log.  Dirty store: the complete current rendition is
    logged as {e one} WAL transaction (extents then superblock, one
    commit fsync), applied, fsynced, and the log is reset — crash-safe
    in every window.  Concurrent readers of the {e file-backed} paged
    rendition must be quiesced first (the extents move); in-memory
    renditions held by readers are unaffected. *)
val checkpoint : t -> unit

val close : t -> unit

val path : t -> string

val page_ints : t -> int

(** Dimensions of the current rendition (pending mutations included). *)
val n_nodes : t -> int

val height : t -> int

(** Total bytes pread from the page file through this handle (pool
    faults, {!doc}, {!verify}, superblock). *)
val bytes_read : t -> int
