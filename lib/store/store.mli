(** The durable document store: real page files behind the buffer pool.

    A store is a directory holding a page file and a write-ahead log:

    {v
      pages.scj   [superblock | post | attr_prefix | size | meta]
      wal.scj     begin / page-image / commit records (see Wal)
    v}

    Every file page has the same stride — [page_ints * 8] data bytes
    plus an 8-byte CRC-32 trailer.  File page 0 is the superblock
    (format magic/version and the extent geometry); the three column
    extents follow with exactly the page-aligned geometry
    {!Scj_pager.Paged_doc.attach} expects, so pool page [p] is file page
    [p + 1] and a {!paged} rendition serves queries with {e zero
    re-encoding}: every buffer-pool fault is a checksum-verified pread.
    The meta extent holds the non-columnar remainder of the document
    (level/parent/kind columns, tag dictionary, text contents) used only
    by {!doc}.

    Durability: {!create} logs each extent as a WAL transaction (commit
    = fsync barrier), applies the images to the page file, fsyncs it and
    truncates the log — so a crash at {e any} point either leaves a log
    that {!open_} replays to the complete store, or no committed
    superblock, which {!open_} reports as a clean "store incomplete"
    error.  Never a half-readable store. *)

(** Raised when a checksum, a short read, or an inconsistent recovered
    document proves the store is lying — distinct from the clean
    [Error _] results of {!open_}, which mean "not a (complete) store".
    Raised lazily: page faults verify on read, so a corrupt page
    surfaces when a query first touches it. *)
exception Corrupt of string

type t

(** [create ?io ?page_ints ~path doc] builds a store for [doc] at
    directory [path] (created if missing; an existing store there is
    overwritten) and reopens it.  [page_ints] is the page payload in
    integers (default 1024 ≈ 8 KB pages).
    @raise Invalid_argument if [doc] fails validation or [page_ints] is
    out of range.
    @raise Corrupt if the just-written store fails its own reopen. *)
val create : ?io:Io.t -> ?page_ints:int -> path:string -> Scj_encoding.Doc.t -> t

(** [open_ ?io ~path ()] runs WAL recovery (replaying committed
    transactions, discarding torn tails), truncates the log, then
    verifies the superblock.  [Error _] carries the torn-tail/incomplete
    diagnosis; it never invents a document. *)
val open_ : ?io:Io.t -> path:string -> unit -> (t, string) result

(** What recovery found when this handle was opened. *)
val last_recovery : t -> Wal.recovery

(** The paged rendition over this store's page file, memoized — one
    buffer pool per store, shared by all readers (the server's worker
    domains, the planner catalog).  [stripes] (default 8) and
    [capacity] (default [max 24 (pool_pages/10)]) apply to the first
    call only. *)
val paged : ?stripes:int -> ?capacity:int -> t -> Scj_pager.Paged_doc.t

(** The memoized pool behind {!paged} — its hit/fault stats are real
    page-file reads. *)
val pool : t -> Scj_pager.Buffer_pool.t

(** Materialize the full in-memory document (post + meta extents, read
    directly and checksum-verified, {e not} through the buffer pool —
    pool stats stay pure query traffic).  Memoized.
    @raise Corrupt on checksum mismatch or failed validation. *)
val doc : t -> Scj_encoding.Doc.t

(** Checksum-walk every page of the file.  [Error] carries the first
    mismatch. *)
val verify : t -> (unit, string) result

(** Fsync the page file and truncate the WAL to its bare header. *)
val checkpoint : t -> unit

val close : t -> unit

val path : t -> string

val page_ints : t -> int

val n_nodes : t -> int

val height : t -> int

(** Total bytes pread from the page file through this handle (pool
    faults, {!doc}, {!verify}, superblock). *)
val bytes_read : t -> int
