(** CRC-32 (IEEE, polynomial [0xEDB88320]) — the per-page and per-WAL-record
    checksum of the durable store. *)

(** [digest b ~pos ~len] — the CRC-32 of the byte range. *)
val digest : Bytes.t -> pos:int -> len:int -> int

(** [update crc b ~pos ~len] extends a running checksum ([digest] is
    [update 0]); composes incrementally, zlib-style. *)
val update : int -> Bytes.t -> pos:int -> len:int -> int
