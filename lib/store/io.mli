(** The store's pluggable I/O layer.

    Every byte the durable store reads or writes goes through one of
    these records of closures, so the fault-injection harness
    ([test/support/faultfs.ml]) can interpose short writes, torn pages
    and crash points without the store knowing.  {!real} is the
    production implementation over [Unix]. *)

(** An open file with positioned access.  All operations are
    thread-safe: one [file] may be shared across the server's reader
    domains. *)
type file = {
  pread : pos:int -> Bytes.t -> int -> int -> int;
      (** [pread ~pos buf off len] reads up to [len] bytes at file offset
          [pos] into [buf] at [off]; returns the number read (short only
          at end of file). *)
  pwrite : pos:int -> Bytes.t -> int -> int -> unit;
      (** [pwrite ~pos buf off len] writes [len] bytes at offset [pos],
          extending the file if needed. *)
  fsync : unit -> unit;  (** Durability barrier. *)
  size : unit -> int;
  truncate : int -> unit;
  close : unit -> unit;
}

type t = {
  openf : path:string -> rw:bool -> create:bool -> file;
  exists : string -> bool;
  mkdir : string -> unit;  (** No-op if the directory exists. *)
  remove : string -> unit;  (** No-op if the file does not exist. *)
}

(** The [Unix] implementation.  OCaml exposes no [pread]/[pwrite], so
    positioned access is lseek+read/write under a per-file mutex. *)
val real : t
