module Doc = Scj_encoding.Doc
module Update = Scj_encoding.Update
module Error = Scj_error.Error
module Buffer_pool = Scj_pager.Buffer_pool
module Paged_doc = Scj_pager.Paged_doc
module Guide = Scj_guide.Guide

exception Corrupt of string

(* ------------------------------------------------------------------ *)
(* On-disk format                                                      *)
(*                                                                     *)
(* A store is a directory holding two files:                           *)
(*                                                                     *)
(*   pages.scj   [superblock | post | attr_prefix | size | meta]       *)
(*   wal.scj     the write-ahead log (see Wal)                         *)
(*                                                                     *)
(* Every file page has the same stride: page_ints * 8 data bytes plus  *)
(* an 8-byte little-endian CRC-32 trailer.  File page 0 is the         *)
(* superblock; the three column extents follow, page-aligned with the  *)
(* geometry Paged_doc.attach expects, so pool page p maps to file page *)
(* p + 1.  The meta extent carries the non-columnar remainder of the   *)
(* document (level/parent/kind columns, tag dictionary, text contents) *)
(* as one length-prefixed blob packed into pages.                      *)
(*                                                                     *)
(* Format version 2 adds logical mutation records (Wal kind 4) to the  *)
(* log: a committed mutation lives only in the WAL until the next      *)
(* checkpoint rewrites the extents.  The page file layout is unchanged *)
(* and version-1 stores open fine.                                     *)
(*                                                                     *)
(* Format version 3 appends a dataguide extent after the meta extent   *)
(* (the serialized path summary, packed into CRC-trailed pages like    *)
(* meta) and two superblock ints for its page/byte counts.  Pre-guide  *)
(* stores (v1/v2) open fine: the guide is rebuilt lazily from the      *)
(* document and persisted at the next checkpoint.  A v3 store with no  *)
(* guide extent is written as v2 — the two formats differ only in the  *)
(* extent's presence.                                                  *)
(* ------------------------------------------------------------------ *)

let pages_file = "pages.scj"

let wal_file = "wal.scj"

let version = 3

let supported_version v = v = 1 || v = 2 || v = 3

(* "SCJSTOR1" as a little-endian int64 *)
let magic_int = Int64.to_int (Bytes.get_int64_le (Bytes.of_string "SCJSTOR1") 0)

let min_page_ints = 16

let max_page_ints = 1 lsl 20

let superblock_ints = 12

let set_int b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_int b off = Int64.to_int (Bytes.get_int64_le b off)

let stride ~page_ints = (page_ints * 8) + 8

let pages_for ~page_ints ints = (ints + page_ints - 1) / page_ints

type geometry = {
  page_ints : int;
  n_nodes : int;
  height : int;
  post_pages : int;
  prefix_pages : int;
  size_pages : int;
  meta_pages : int;
  meta_bytes : int;
  guide_pages : int;
  guide_bytes : int;
}

let blob_pages ~page_ints bytes = (bytes + (page_ints * 8) - 1) / (page_ints * 8)

let geometry ~page_ints ~n_nodes ~height ~meta_bytes ~guide_bytes =
  {
    page_ints;
    n_nodes;
    height;
    post_pages = pages_for ~page_ints n_nodes;
    prefix_pages = pages_for ~page_ints (n_nodes + 1);
    size_pages = pages_for ~page_ints n_nodes;
    meta_pages = blob_pages ~page_ints meta_bytes;
    meta_bytes;
    guide_pages = blob_pages ~page_ints guide_bytes;
    guide_bytes;
  }

(* pool pages = the three column extents Paged_doc reads *)
let pool_pages g = g.post_pages + g.prefix_pages + g.size_pages

let file_pages g = 1 + pool_pages g + g.meta_pages + g.guide_pages

(* pool logical length in integers: matches Paged_doc's extent layout *)
let pool_length g = ((g.post_pages + g.prefix_pages) * g.page_ints) + g.n_nodes

(* ------------------------------------------------------------------ *)
(* Page encode/decode                                                  *)
(* ------------------------------------------------------------------ *)

(* encode [ints.(off .. off+len-1)] (zero-padded to page_ints) as one
   checksummed file page *)
let encode_page ~page_ints ints off len =
  let b = Bytes.make (stride ~page_ints) '\000' in
  for i = 0 to len - 1 do
    set_int b (8 * i) ints.(off + i)
  done;
  set_int b (page_ints * 8) (Crc32.digest b ~pos:0 ~len:(page_ints * 8));
  b

(* encode a slice of a raw byte blob as one checksummed file page *)
let encode_meta_page ~page_ints blob off len =
  let b = Bytes.make (stride ~page_ints) '\000' in
  Bytes.blit blob off b 0 len;
  set_int b (page_ints * 8) (Crc32.digest b ~pos:0 ~len:(page_ints * 8));
  b

let check_page ~page_ints ~what b =
  let stored = get_int b (page_ints * 8) in
  let computed = Crc32.digest b ~pos:0 ~len:(page_ints * 8) in
  if stored <> computed then
    raise
      (Corrupt (Printf.sprintf "checksum mismatch on %s (stored %d, computed %d)" what stored
                  computed))

(* ------------------------------------------------------------------ *)
(* Meta blob: the non-columnar document fields, Codec-style            *)
(* ------------------------------------------------------------------ *)

let kind_code = function
  | Doc.Element -> 0
  | Doc.Attribute -> 1
  | Doc.Text -> 2
  | Doc.Comment -> 3
  | Doc.Pi -> 4

let kind_of_code = function
  | 0 -> Doc.Element
  | 1 -> Doc.Attribute
  | 2 -> Doc.Text
  | 3 -> Doc.Comment
  | 4 -> Doc.Pi
  | c -> raise (Corrupt (Printf.sprintf "corrupt kind code %d in meta extent" c))

let buf_int buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let buf_string buf s =
  buf_int buf (String.length s);
  Buffer.add_string buf s

let encode_meta doc =
  let n = Doc.n_nodes doc in
  let buf = Buffer.create (n * 24) in
  Array.iter (buf_int buf) (Doc.level_array doc);
  Array.iter (buf_int buf) (Doc.parent_array doc);
  Array.iter (fun k -> buf_int buf (kind_code k)) (Doc.kind_array doc);
  for pre = 0 to n - 1 do
    match Doc.tag_name doc pre with
    | None -> buf_int buf 0
    | Some name ->
      buf_int buf 1;
      buf_string buf name
  done;
  for pre = 0 to n - 1 do
    match (Doc.kind doc pre, Doc.content doc pre) with
    | (Doc.Text | Doc.Comment | Doc.Attribute | Doc.Pi), Some s ->
      buf_int buf 1;
      buf_string buf s
    | _, _ -> buf_int buf 0
  done;
  Buffer.to_bytes buf

type cursor = { blob : Bytes.t; mutable pos : int }

let cur_int c =
  if c.pos + 8 > Bytes.length c.blob then raise (Corrupt "meta extent truncated");
  let v = get_int c.blob c.pos in
  c.pos <- c.pos + 8;
  v

let cur_string c =
  let len = cur_int c in
  if len < 0 || c.pos + len > Bytes.length c.blob then
    raise (Corrupt "corrupt string length in meta extent");
  let s = Bytes.sub_string c.blob c.pos len in
  c.pos <- c.pos + len;
  s

let decode_meta ~n ~height ~post blob =
  let c = { blob; pos = 0 } in
  let level = Array.init n (fun _ -> cur_int c) in
  let parent = Array.init n (fun _ -> cur_int c) in
  let kind = Array.init n (fun _ -> kind_of_code (cur_int c)) in
  let tags = Array.init n (fun _ -> if cur_int c = 1 then Some (cur_string c) else None) in
  let contents = Array.init n (fun _ -> if cur_int c = 1 then Some (cur_string c) else None) in
  let doc = Doc.Internal.assemble ~post ~level ~parent ~kind ~tags ~contents ~height () in
  match Doc.validate doc with
  | Ok () -> doc
  | Error e -> raise (Corrupt (Printf.sprintf "recovered document is inconsistent: %s" e))

(* ------------------------------------------------------------------ *)
(* Store handle                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  io : Io.t;
  path : string;
  pages : Io.file;
  walf : Io.file;
  wal : Wal.t;
  mutable geo : geometry;  (* rewritten by a checkpoint with mutations *)
  last_recovery : Wal.recovery;
  bytes_read : int Atomic.t;
  lock : Mutex.t;  (* guards the memos, the pending list and the WAL *)
  mutable doc : Doc.t option;
  mutable paged : Paged_doc.t option;
  mutable guide_memo : Guide.t option;  (* maintained incrementally by apply *)
  mutable pending : Update.op list;  (* committed, not yet checkpointed; oldest first *)
  mutable next_txid : int;
}

let page_ints t = t.geo.page_ints

let path t = t.path

let last_recovery t = t.last_recovery

let bytes_read t = Atomic.get t.bytes_read

let pending_mutations t = List.length t.pending

(* current-rendition dimensions: the geometry describes the page file,
   which lags behind committed logical mutations until checkpoint *)
let n_nodes t =
  match t.doc with Some d when t.pending <> [] -> Doc.n_nodes d | _ -> t.geo.n_nodes

let height t = match t.doc with Some d when t.pending <> [] -> Doc.height d | _ -> t.geo.height

(* read + checksum-verify one file page; every byte is counted *)
let read_file_page t fpage =
  let page_ints = t.geo.page_ints in
  let st = stride ~page_ints in
  let b = Bytes.create st in
  let got = t.pages.Io.pread ~pos:(fpage * st) b 0 st in
  Atomic.fetch_and_add t.bytes_read got |> ignore;
  if got < st then
    raise (Corrupt (Printf.sprintf "short read on file page %d (%d of %d bytes)" fpage got st));
  check_page ~page_ints ~what:(Printf.sprintf "file page %d" fpage) b;
  b

(* decode a column page into ints; [len] trims the pool's last page *)
let ints_of_page b len = Array.init len (fun i -> get_int b (8 * i))

(* the Buffer_pool store: pool page p lives on file page p + 1 *)
let pool_store t =
  let g = t.geo in
  let length = pool_length g in
  Buffer_pool.Store.of_fn ~page_ints:g.page_ints ~length (fun p ->
      let b = read_file_page t (p + 1) in
      let len = min g.page_ints (length - (p * g.page_ints)) in
      ints_of_page b len)

let default_capacity g = max 24 (pool_pages g / 10)

(* Materialize the base (page-file) rendition: post extent + meta
   extent, read directly (checksum-verified) — deliberately not through
   the buffer pool, whose stats stay pure query traffic.  Caller holds
   the lock. *)
let materialize_base t =
  let g = t.geo in
  let post = Array.make g.n_nodes 0 in
  for p = 0 to g.post_pages - 1 do
    let b = read_file_page t (1 + p) in
    let len = min g.page_ints (g.n_nodes - (p * g.page_ints)) in
    for i = 0 to len - 1 do
      post.((p * g.page_ints) + i) <- get_int b (8 * i)
    done
  done;
  let blob = Bytes.create g.meta_bytes in
  let meta_base = 1 + pool_pages g in
  for p = 0 to g.meta_pages - 1 do
    let b = read_file_page t (meta_base + p) in
    let len = min (g.page_ints * 8) (g.meta_bytes - (p * g.page_ints * 8)) in
    Bytes.blit b 0 blob (p * g.page_ints * 8) len
  done;
  decode_meta ~n:g.n_nodes ~height:g.height ~post blob

let doc_locked t =
  match t.doc with
  | Some d -> d
  | None ->
    let d = materialize_base t in
    t.doc <- Some d;
    d

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let doc t = with_lock t (fun () -> doc_locked t)

(* read the serialized dataguide extent of the base rendition *)
let read_guide_blob t =
  let g = t.geo in
  let blob = Bytes.create g.guide_bytes in
  let guide_base = 1 + pool_pages g + g.meta_pages in
  for p = 0 to g.guide_pages - 1 do
    let b = read_file_page t (guide_base + p) in
    let len = min (g.page_ints * 8) (g.guide_bytes - (p * g.page_ints * 8)) in
    Bytes.blit b 0 blob (p * g.page_ints * 8) len
  done;
  blob

let guide_banner t reason =
  Printf.eprintf "[scj] store %s: %s -- rebuilt the dataguide in memory; the next checkpoint persists it\n%!"
    t.path reason

(* The store's dataguide.  Clean v3 store: deserialized straight from
   its extent (no document rescan).  Pre-guide (v1/v2) store, a corrupt
   guide extent, or a base rendition lagging committed mutations: rebuilt
   from the current document — one banner line in the pre-guide/corrupt
   cases, and the next checkpoint writes the extent.  Once materialized,
   [apply] maintains the memo incrementally. *)
let guide_locked t =
  match t.guide_memo with
  | Some g -> g
  | None ->
    let d = doc_locked t in
    let g =
      if t.geo.guide_pages = 0 then begin
        guide_banner t "pre-guide store format";
        Guide.build d
      end
      else if t.pending <> [] then
        (* the extent describes the base rendition, not the pending one *)
        Guide.build d
      else
        match Guide.deserialize (read_guide_blob t) with
        | Ok g when Guide.doc_nodes g = Doc.n_nodes d -> g
        | Ok _ ->
          guide_banner t "guide extent disagrees with the document";
          Guide.build d
        | Error msg ->
          guide_banner t (Printf.sprintf "guide extent invalid (%s)" msg);
          Guide.build d
    in
    t.guide_memo <- Some g;
    g

let guide t = with_lock t (fun () -> guide_locked t)

let paged ?(stripes = 8) ?capacity t =
  with_lock t (fun () ->
      match t.paged with
      | Some p -> p
      | None ->
        let p =
          if t.pending = [] then begin
            (* clean store: serve queries straight off the page file *)
            let capacity =
              match capacity with Some c -> c | None -> default_capacity t.geo
            in
            let stripes = max 1 (min stripes (capacity / 3)) in
            let pool = Buffer_pool.create ~stripes ~capacity (pool_store t) in
            Paged_doc.attach ~n:t.geo.n_nodes ~height:t.geo.height pool
          end
          else begin
            (* the page file lags the committed mutations: page an
               in-memory image of the current rendition instead of the
               stale extents *)
            let d = doc_locked t in
            let g =
              geometry ~page_ints:t.geo.page_ints ~n_nodes:(Doc.n_nodes d)
                ~height:(Doc.height d) ~meta_bytes:0 ~guide_bytes:0
            in
            let capacity = match capacity with Some c -> c | None -> default_capacity g in
            let stripes = max 1 (min stripes (capacity / 3)) in
            Paged_doc.load ~page_ints:g.page_ints ~stripes ~capacity d
          end
        in
        t.paged <- Some p;
        p)

let pool t = Paged_doc.pool (paged t)

let verify t =
  try
    for fpage = 0 to file_pages t.geo - 1 do
      ignore (read_file_page t fpage)
    done;
    Ok ()
  with Corrupt msg -> Error (Error.corrupt msg)

let close t =
  t.pages.Io.close ();
  t.walf.Io.close ()

(* ------------------------------------------------------------------ *)
(* Page-image transactions (creation and checkpoint)                   *)
(* ------------------------------------------------------------------ *)

let superblock_page g =
  (* no guide extent ⇒ the image is bit-identical to a version-2 store *)
  let ver = if g.guide_pages = 0 then 2 else version in
  let ints =
    [|
      magic_int;
      ver;
      g.page_ints;
      g.n_nodes;
      g.height;
      g.post_pages;
      g.prefix_pages;
      g.size_pages;
      g.meta_pages;
      g.meta_bytes;
      g.guide_pages;
      g.guide_bytes;
    |]
  in
  encode_page ~page_ints:g.page_ints ints 0 superblock_ints

(* iterate (file_page, encoded page) over one column's extent *)
let iter_column_pages g ~base column len f =
  let n_pages = pages_for ~page_ints:g.page_ints len in
  for p = 0 to n_pages - 1 do
    let off = p * g.page_ints in
    let page_len = min g.page_ints (len - off) in
    f (base + p) (encode_page ~page_ints:g.page_ints column off page_len)
  done

let iter_blob_pages g ~base ~pages ~bytes blob f =
  for p = 0 to pages - 1 do
    let off = p * g.page_ints * 8 in
    let len = min (g.page_ints * 8) (bytes - off) in
    f (base + p) (encode_meta_page ~page_ints:g.page_ints blob off len)
  done

let iter_meta_pages g ~base blob f =
  iter_blob_pages g ~base ~pages:g.meta_pages ~bytes:g.meta_bytes blob f

let iter_guide_pages g ~base blob f =
  iter_blob_pages g ~base ~pages:g.guide_pages ~bytes:g.guide_bytes blob f

(* every (file_page, bytes) of a complete store image, in file order,
   split into one iterator per extent (superblock last: applying it is
   the commit point of the image, and during recovery it rebases away
   any logical mutations logged before it) *)
let store_image_iters g doc meta gblob =
  let post_base = 1 in
  let prefix_base = post_base + g.post_pages in
  let size_base = prefix_base + g.prefix_pages in
  let meta_base = size_base + g.size_pages in
  let guide_base = meta_base + g.meta_pages in
  [
    (fun f -> iter_column_pages g ~base:post_base (Doc.post_array doc) g.n_nodes f);
    (fun f -> iter_column_pages g ~base:prefix_base (Doc.attr_prefix_array doc) (g.n_nodes + 1) f);
    (fun f -> iter_column_pages g ~base:size_base (Doc.size_array doc) g.n_nodes f);
    (fun f -> iter_meta_pages g ~base:meta_base meta f);
    (fun f -> iter_guide_pages g ~base:guide_base gblob f);
    (fun f -> f 0 (superblock_page g));
  ]

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

(* Commit one structural update: validate it against the current
   rendition, log it as a single-record WAL transaction (the commit
   fsync is the durability barrier), then install the new rendition in
   the memo.  The page file is untouched — the mutation lives in the
   log until the next checkpoint. *)
let apply t op =
  with_lock t (fun () ->
      let base = doc_locked t in
      match Update.apply base op with
      | Error e -> Error e
      | Ok applied ->
        let txid = t.next_txid in
        t.next_txid <- txid + 1;
        Wal.begin_ t.wal ~txid;
        Wal.mutation t.wal ~txid (Bytes.of_string (Update.encode op));
        Wal.commit t.wal ~txid;
        (* splice the materialized path summary alongside the document,
           so Store.guide never pays a rescan after writes *)
        (match t.guide_memo with
        | None -> ()
        | Some g ->
          t.guide_memo <-
            Some
              (Guide.update g ~old_doc:base ~doc:applied.Update.doc
                 ~splice:applied.Update.splice ~delta:applied.Update.delta));
        t.doc <- Some applied.Update.doc;
        t.pending <- t.pending @ [ op ];
        (* readers holding the previous paged rendition keep it; the
           memo now points at nothing until someone asks again *)
        t.paged <- None;
        Ok applied)

(* Checkpoint.  Clean store: fsync + reset the log.  With pending
   mutations: write the complete current rendition as ONE WAL
   transaction (extents + superblock, one commit fsync), apply it to
   the page file, fsync, then truncate the log.  Crash-safe in every
   window: before the commit record is durable, recovery still has the
   old extents + the logical mutations; after it, recovery replays the
   images and the applied superblock rebases the mutations away. *)
let checkpoint t =
  with_lock t (fun () ->
      (* a clean pre-guide store still rewrites once, to gain its guide
         extent (the format upgrade promised by the open-time banner) *)
      if t.pending = [] && t.geo.guide_pages > 0 then begin
        t.pages.Io.fsync ();
        Wal.truncate t.wal
      end
      else begin
        let d = doc_locked t in
        let meta = encode_meta d in
        let gblob = Guide.serialize (guide_locked t) in
        let g =
          geometry ~page_ints:t.geo.page_ints ~n_nodes:(Doc.n_nodes d) ~height:(Doc.height d)
            ~meta_bytes:(Bytes.length meta) ~guide_bytes:(Bytes.length gblob)
        in
        let iters = store_image_iters g d meta gblob in
        let txid = t.next_txid in
        t.next_txid <- txid + 1;
        Wal.begin_ t.wal ~txid;
        List.iter (fun iter -> iter (fun fpage img -> Wal.page_image t.wal ~txid ~page:fpage img)) iters;
        Wal.commit t.wal ~txid;
        let st = stride ~page_ints:g.page_ints in
        List.iter
          (fun iter -> iter (fun fpage img -> t.pages.Io.pwrite ~pos:(fpage * st) img 0 st))
          iters;
        t.pages.Io.truncate (file_pages g * st);
        t.pages.Io.fsync ();
        Wal.truncate t.wal;
        t.geo <- g;
        t.pending <- [];
        (* the file-backed pool (if any) addressed the old extents *)
        t.paged <- None
      end)

(* ------------------------------------------------------------------ *)
(* Creation and opening                                                *)
(* ------------------------------------------------------------------ *)

let open_files io ~path ~create =
  if create then io.Io.mkdir path;
  let pages = io.Io.openf ~path:(Filename.concat path pages_file) ~rw:true ~create in
  let wal = io.Io.openf ~path:(Filename.concat path wal_file) ~rw:true ~create in
  (pages, wal)

let make_handle io ~path ~pages ~walf ~wal ~geo ~recovery =
  {
    io;
    path;
    pages;
    walf;
    wal;
    geo;
    last_recovery = recovery;
    bytes_read = Atomic.make 0;
    lock = Mutex.create ();
    doc = None;
    paged = None;
    guide_memo = None;
    pending = [];
    next_txid = 100 + recovery.Wal.committed;
  }

(* Parse and sanity-check the superblock.  Incomplete means "creation
   never committed" (a clean state, not damage); Corrupt means the
   store lies. *)
let read_superblock t =
  let st_size = t.pages.Io.size () in
  (* peek page_ints before we know the stride *)
  let peek = Bytes.create 24 in
  let got = t.pages.Io.pread ~pos:0 peek 0 24 in
  Atomic.fetch_and_add t.bytes_read got |> ignore;
  if got < 24 then Error (Error.incomplete "no superblock (creation never committed)")
  else begin
    let magic = get_int peek 0 and ver = get_int peek 8 and page_ints = get_int peek 16 in
    if magic <> magic_int then Error (Error.incomplete "bad superblock magic (incomplete or foreign)")
    else if not (supported_version ver) then
      Error (Error.validation (Printf.sprintf "unsupported store format version %d" ver))
    else if page_ints < min_page_ints || page_ints > max_page_ints then
      Error (Error.corrupt (Printf.sprintf "corrupt superblock: implausible page_ints %d" page_ints))
    else if st_size < stride ~page_ints then
      Error (Error.incomplete "superblock page torn (creation never committed)")
    else begin
      match read_file_page { t with geo = { t.geo with page_ints } } 0 with
      | exception Corrupt msg -> Error (Error.corrupt msg)
      | b ->
        let f i = get_int b (8 * i) in
        (* pre-guide formats (v1/v2) carry no guide ints; the zero-pad
           reads back as an absent extent either way *)
        let g =
          {
            page_ints;
            n_nodes = f 3;
            height = f 4;
            post_pages = f 5;
            prefix_pages = f 6;
            size_pages = f 7;
            meta_pages = f 8;
            meta_bytes = f 9;
            guide_pages = (if ver >= 3 then f 10 else 0);
            guide_bytes = (if ver >= 3 then f 11 else 0);
          }
        in
        let expect =
          geometry ~page_ints ~n_nodes:g.n_nodes ~height:g.height ~meta_bytes:g.meta_bytes
            ~guide_bytes:g.guide_bytes
        in
        if g.n_nodes <= 0 || g.height < 0 || g.meta_bytes < 0 || g.guide_bytes < 0 then
          Error (Error.corrupt "corrupt superblock: implausible document dimensions")
        else if g <> expect then Error (Error.corrupt "corrupt superblock: extent geometry inconsistent")
        else if t.pages.Io.size () < file_pages g * stride ~page_ints then
          Error (Error.incomplete "page file shorter than its extents")
        else Ok g
    end
  end

let open_ ?(io = Io.real) path =
  if not (io.Io.exists path) then Error (Error.io (Printf.sprintf "no store at %s" path))
  else if not (io.Io.exists (Filename.concat path pages_file)) then
    Error (Error.io (Printf.sprintf "no store at %s: missing %s" path pages_file))
  else begin
    let pages, walf = open_files io ~path ~create:false in
    let wal = Wal.attach walf in
    let cleanup () =
      pages.Io.close ();
      walf.Io.close ()
    in
    (* Redo pass first: a committed creation/checkpoint whose page
       writes never landed is completed here.  Every logged image is a
       full page (stride bytes), so its file offset is page * image
       length.  Committed logical mutations are collected for replay
       on top of the base document — unless a later committed
       superblock image (a completed checkpoint) rebases them away. *)
    let mutations = ref [] in
    match
      Wal.recover wal
        ~apply:(fun ~page img ->
          pages.Io.pwrite ~pos:(page * Bytes.length img) img 0 (Bytes.length img);
          if page = 0 then mutations := [])
        ~apply_mutation:(fun payload -> mutations := Bytes.to_string payload :: !mutations)
    with
    | exception e ->
      cleanup ();
      Error (Error.recovery (Printf.sprintf "WAL recovery failed: %s" (Printexc.to_string e)))
    | recovery ->
      if recovery.Wal.replayed_pages > 0 then pages.Io.fsync ();
      let pending_payloads = List.rev !mutations in
      (* a log with pending mutations must survive the next crash; a
         clean one resets to its bare header *)
      if pending_payloads = [] then Wal.truncate wal
      else Wal.trim wal ~pos:recovery.Wal.committed_end;
      let t =
        make_handle io ~path ~pages ~walf ~wal
          ~geo:(geometry ~page_ints:min_page_ints ~n_nodes:1 ~height:0 ~meta_bytes:0 ~guide_bytes:0)
          ~recovery
      in
      (match read_superblock t with
      | Error e ->
        cleanup ();
        Error e
      | Ok geo ->
        t.geo <- geo;
        if pending_payloads = [] then Ok t
        else begin
          (* replay the logical mutations on the base rendition *)
          match
            List.fold_left
              (fun acc payload ->
                match acc with
                | Error _ as e -> e
                | Ok (d, ops) -> (
                  match Update.decode payload with
                  | Error e ->
                    Error (Error.recovery (Printf.sprintf "undecodable mutation record: %s" e))
                  | Ok op -> (
                    match Update.apply d op with
                    | Error e ->
                      Error
                        (Error.recovery
                           (Printf.sprintf "logged mutation no longer applies (%s): %s"
                              (Update.op_to_string op) (Error.to_string e)))
                    | Ok applied -> Ok (applied.Update.doc, op :: ops))))
              (match materialize_base t with
              | d -> Ok (d, [])
              | exception Corrupt msg -> Error (Error.corrupt msg))
              pending_payloads
          with
          | Error e ->
            cleanup ();
            Error e
          | Ok (d, rev_ops) ->
            t.doc <- Some d;
            t.pending <- List.rev rev_ops;
            Ok t
        end)
  end

let create ?(io = Io.real) ?(page_ints = 1024) ?(guide = true) ~path doc =
  if page_ints < min_page_ints || page_ints > max_page_ints then
    invalid_arg
      (Printf.sprintf "Store.create: page_ints must be in [%d, %d]" min_page_ints max_page_ints);
  (match Doc.validate doc with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Store.create: document invalid: %s" e));
  let meta = encode_meta doc in
  (* ~guide:false writes a bona-fide version-2 (pre-guide) store — the
     compatibility fixture the tests open to exercise the lazy-rebuild
     path *)
  let gblob = if guide then Guide.serialize (Guide.build doc) else Bytes.empty in
  let g =
    geometry ~page_ints ~n_nodes:(Doc.n_nodes doc) ~height:(Doc.height doc)
      ~meta_bytes:(Bytes.length meta) ~guide_bytes:(Bytes.length gblob)
  in
  let pages, walf = open_files io ~path ~create:true in
  let wal = Wal.attach walf in
  Fun.protect
    ~finally:(fun () ->
      pages.Io.close ();
      walf.Io.close ())
    (fun () ->
      (* clean slate: a retried creation after a crash starts over *)
      pages.Io.truncate 0;
      Wal.truncate wal;
      (* one transaction per extent; each commit is an fsync barrier.
         The superblock goes last: it commits creation — until it is
         durable, open_ refuses the store as incomplete. *)
      let txns = List.mapi (fun i iter -> (i + 1, iter)) (store_image_iters g doc meta gblob) in
      (* 1. log everything *)
      List.iter
        (fun (txid, iter) ->
          Wal.begin_ wal ~txid;
          iter (fun fpage img -> Wal.page_image wal ~txid ~page:fpage img);
          Wal.commit wal ~txid)
        txns;
      (* 2. apply to the page file — safe in any order now: the whole log
         is durable, so a crash here replays it *)
      let st = stride ~page_ints in
      List.iter (fun (_, iter) -> iter (fun fpage img -> pages.Io.pwrite ~pos:(fpage * st) img 0 st)) txns;
      pages.Io.fsync ();
      (* 3. checkpoint: the log has done its job *)
      Wal.truncate wal);
  match open_ ~io path with
  | Ok t -> t
  | Error e ->
    raise (Corrupt (Printf.sprintf "store just created failed to open: %s" (Error.to_string e)))
