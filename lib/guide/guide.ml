module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Int_col = Scj_bat.Int_col

(* ------------------------------------------------------------------ *)
(* Representation                                                      *)
(*                                                                     *)
(* Summary nodes live in a growable array; the tree structure is the   *)
(* per-node distinct-child map plus a top-level map for root paths     *)
(* (one live entry — the document root element — but renames can       *)
(* leave retired siblings behind).  A node whose member column is      *)
(* empty is retired: maintenance never deletes nodes (children of a    *)
(* pruned subtree could come back on the next splice), the query/dump  *)
(* API simply skips them, and serialization drops them — so a freshly  *)
(* deserialized or rebuilt guide is the canonical compact form.        *)
(* ------------------------------------------------------------------ *)

type node = {
  parent : int;  (* summary-parent id, -1 for a root path *)
  kind : Doc.kind;
  name : string;  (* "" for unnamed kinds (text, comment) *)
  members : Int_col.t;  (* pre ranks on this path, strictly increasing *)
  children : (Doc.kind * string, int) Hashtbl.t;
}

type t = {
  mutable nodes : node array;  (* first [n_summary] entries are live *)
  mutable n_summary : int;
  roots : (Doc.kind * string, int) Hashtbl.t;
  mutable doc_nodes : int;
}

let doc_nodes t = t.doc_nodes

let node t g = t.nodes.(g)

let count t g = Int_col.length (node t g).members

let populated t g = count t g > 0

let n_paths t =
  let n = ref 0 in
  for g = 0 to t.n_summary - 1 do
    if populated t g then incr n
  done;
  !n

let label nd =
  match nd.kind with
  | Doc.Element -> nd.name
  | Doc.Attribute -> "@" ^ nd.name
  | Doc.Text -> "#text"
  | Doc.Comment -> "#comment"
  | Doc.Pi -> "?" ^ nd.name

let path t g =
  let rec up g acc = if g < 0 then acc else up (node t g).parent (label (node t g) :: acc) in
  "/" ^ String.concat "/" (up g [])

(* ------------------------------------------------------------------ *)
(* Construction and splice maintenance                                 *)
(* ------------------------------------------------------------------ *)

let empty () = { nodes = [||]; n_summary = 0; roots = Hashtbl.create 4; doc_nodes = 0 }

let push_node t nd =
  let cap = Array.length t.nodes in
  if t.n_summary = cap then begin
    let bigger = Array.make (max 8 (2 * cap)) nd in
    Array.blit t.nodes 0 bigger 0 t.n_summary;
    t.nodes <- bigger
  end;
  t.nodes.(t.n_summary) <- nd;
  t.n_summary <- t.n_summary + 1;
  t.n_summary - 1

let child_table t gp = if gp < 0 then t.roots else (node t gp).children

let find_or_add t gp ((kind, name) as key) =
  let table = child_table t gp in
  match Hashtbl.find_opt table key with
  | Some g -> g
  | None ->
    let g =
      push_node t
        { parent = gp; kind; name; members = Int_col.create ~capacity:4 (); children = Hashtbl.create 2 }
    in
    Hashtbl.add table key g;
    g

let key_of doc v =
  (Doc.kind doc v, match Doc.tag_name doc v with Some s -> s | None -> "")

(* Replay rows [splice .. n-1] of [doc] into [t]: parents precede their
   children in preorder, so a row's summary parent is either already
   replayed (parent >= splice) or an untouched prefix row resolved by
   walking its ancestor chain through the child maps (memoized — the
   chain is shared by every row of the spliced tail). *)
let replay_tail t doc ~splice =
  let n = Doc.n_nodes doc in
  let parents = Doc.parent_array doc in
  let gid_new = Array.make (max 1 (n - splice)) (-1) in
  let cache = Hashtbl.create 16 in
  let rec resolve p =
    match Hashtbl.find_opt cache p with
    | Some g -> g
    | None ->
      let gp = if parents.(p) < 0 then -1 else resolve parents.(p) in
      let g = find_or_add t gp (key_of doc p) in
      Hashtbl.add cache p g;
      g
  in
  for v = splice to n - 1 do
    let p = parents.(v) in
    let gp = if p < 0 then -1 else if p >= splice then gid_new.(p - splice) else resolve p in
    let g = find_or_add t gp (key_of doc v) in
    Int_col.append_unit (node t g).members v;
    gid_new.(v - splice) <- g
  done;
  t.doc_nodes <- n

let build doc =
  let t = empty () in
  replay_tail t doc ~splice:0;
  t

let update t ~old_doc ~doc ~splice ~delta =
  ignore old_doc;
  ignore delta;
  let clone nd =
    let cut = Int_col.first_ge nd.members splice in
    { nd with members = Int_col.sub nd.members ~pos:0 ~len:cut; children = Hashtbl.copy nd.children }
  in
  let u =
    {
      nodes = Array.init t.n_summary (fun g -> clone t.nodes.(g));
      n_summary = t.n_summary;
      roots = Hashtbl.copy t.roots;
      doc_nodes = 0;
    }
  in
  replay_tail u doc ~splice;
  u

(* ------------------------------------------------------------------ *)
(* Cursors                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = int list (* sorted, populated summary ids *)

let is_empty c = c = []

let cursor_size = List.length

let norm c = List.sort_uniq compare c

let cursor_union a b = norm (a @ b)

let root_cursor t =
  norm (Hashtbl.fold (fun _ g acc -> if populated t g then g :: acc else acc) t.roots [])

let matches t g ~kind ~name =
  let nd = node t g in
  nd.kind = kind && String.equal nd.name name && populated t g

let self_step t cur ~kind ~name = List.filter (fun g -> matches t g ~kind ~name) cur

let child_step t cur ~kind ~name =
  norm
    (List.concat_map
       (fun g ->
         match Hashtbl.find_opt (node t g).children (kind, name) with
         | Some c when populated t c -> [ c ]
         | Some _ | None -> [])
       cur)

let descendant_step t ?(or_self = false) cur ~name =
  let seen = Hashtbl.create 16 in
  let hits = ref [] in
  let rec sweep g =
    if not (Hashtbl.mem seen g) then begin
      Hashtbl.add seen g ();
      if matches t g ~kind:Doc.Element ~name then hits := g :: !hits;
      Hashtbl.iter (fun _ c -> sweep c) (node t g).children
    end
  in
  List.iter (fun g -> Hashtbl.iter (fun _ c -> sweep c) (node t g).children) cur;
  if or_self then List.iter (fun g -> if matches t g ~kind:Doc.Element ~name then hits := g :: !hits) cur;
  norm !hits

let ancestor_step t ?(or_self = false) cur ~name =
  let hits = ref [] in
  let rec up g =
    if g >= 0 then begin
      if matches t g ~kind:Doc.Element ~name then hits := g :: !hits;
      up (node t g).parent
    end
  in
  List.iter (fun g -> up (if or_self then g else (node t g).parent)) cur;
  norm !hits

let card t cur = List.fold_left (fun acc g -> acc + count t g) 0 cur

let paths t cur = List.sort compare (List.map (path t) cur)

let cursor_key t cur = String.concat "|" (paths t cur)

let members t cur =
  let total = card t cur in
  let arr = Array.make (max 1 total) 0 in
  let off = ref 0 in
  List.iter
    (fun g ->
      let m = (node t g).members in
      Int_col.blit_into m arr ~dst_pos:!off;
      off := !off + Int_col.length m)
    cur;
  let arr = if total = Array.length arr then arr else Array.sub arr 0 total in
  (* member sets of distinct summary nodes are disjoint: sorting the
     concatenation yields a strictly increasing rank sequence *)
  Array.sort compare arr;
  Nodeseq.of_sorted_array arr

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

type info = {
  path : string;
  depth : int;
  kind : Doc.kind;
  label : string;
  count : int;
  attrs : int;
  min_pre : int;
  max_pre : int;
  n_children : int;
}

let sorted_children t g =
  let table = child_table t g in
  let kids = Hashtbl.fold (fun _ c acc -> if populated t c then c :: acc else acc) table [] in
  List.sort (fun a b -> compare (label (node t a)) (label (node t b))) kids

let attrs_of t g =
  Hashtbl.fold
    (fun (kind, _) c acc -> if kind = Doc.Attribute then acc + count t c else acc)
    (node t g).children 0

let info_of t ~depth g =
  let nd = node t g in
  let m = nd.members in
  {
    path = path t g;
    depth;
    kind = nd.kind;
    label = label nd;
    count = Int_col.length m;
    attrs = attrs_of t g;
    min_pre = Int_col.get m 0;
    max_pre = Int_col.last m;
    n_children = List.length (sorted_children t g);
  }

let infos t =
  let out = ref [] in
  let rec walk depth g =
    out := info_of t ~depth g :: !out;
    List.iter (walk (depth + 1)) (sorted_children t g)
  in
  List.iter (walk 0) (sorted_children t (-1));
  List.rev !out

let pp ppf t =
  List.iter
    (fun i ->
      Format.fprintf ppf "%s%s  count=%d attrs=%d pre=%d..%d@."
        (String.make (2 * i.depth) ' ')
        i.label i.count i.attrs i.min_pre i.max_pre)
    (infos t)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  let rec emit g =
    let nd = node t g in
    let m = nd.members in
    Buffer.add_string buf
      (Printf.sprintf "{\"label\":\"%s\",\"kind\":\"%s\",\"count\":%d,\"attrs\":%d,\"min_pre\":%d,\"max_pre\":%d,\"children\":["
         (json_escape (label nd))
         (Doc.kind_to_string nd.kind)
         (Int_col.length m) (attrs_of t g) (Int_col.get m 0) (Int_col.last m));
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        emit c)
      (sorted_children t g);
    Buffer.add_string buf "]}"
  in
  Buffer.add_string buf (Printf.sprintf "{\"doc_nodes\":%d,\"paths\":%d,\"tree\":[" t.doc_nodes (n_paths t));
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf ',';
      emit g)
    (sorted_children t (-1));
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(*                                                                     *)
(* Flat preorder over the populated tree: per node its parent's index  *)
(* in the emitted sequence, kind code, name, and member ranks.  The    *)
(* store wraps the blob in CRC-trailed pages; decode revalidates the   *)
(* structural invariants so a corrupt extent surfaces as Error, never  *)
(* as a quietly wrong guide.                                           *)
(* ------------------------------------------------------------------ *)

(* "SCJGUIDE" little-endian *)
let magic_int = Int64.to_int (Bytes.get_int64_le (Bytes.of_string "SCJGUIDE") 0)

let format_version = 1

let kind_code = function
  | Doc.Element -> 0
  | Doc.Attribute -> 1
  | Doc.Text -> 2
  | Doc.Comment -> 3
  | Doc.Pi -> 4

let kind_of_code = function
  | 0 -> Ok Doc.Element
  | 1 -> Ok Doc.Attribute
  | 2 -> Ok Doc.Text
  | 3 -> Ok Doc.Comment
  | 4 -> Ok Doc.Pi
  | c -> Error (Printf.sprintf "corrupt kind code %d" c)

let buf_int buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let buf_string buf s =
  buf_int buf (String.length s);
  Buffer.add_string buf s

let serialize t =
  let buf = Buffer.create 4096 in
  buf_int buf magic_int;
  buf_int buf format_version;
  buf_int buf t.doc_nodes;
  let order = ref [] and n_emitted = ref 0 in
  let seq = Hashtbl.create 64 in
  let rec number g =
    Hashtbl.add seq g !n_emitted;
    incr n_emitted;
    order := g :: !order;
    List.iter number (sorted_children t g)
  in
  List.iter number (sorted_children t (-1));
  buf_int buf !n_emitted;
  List.iter
    (fun g ->
      let nd = node t g in
      let parent_seq = if nd.parent < 0 then -1 else Hashtbl.find seq nd.parent in
      buf_int buf parent_seq;
      buf_int buf (kind_code nd.kind);
      buf_string buf nd.name;
      buf_int buf (Int_col.length nd.members);
      Int_col.iter (buf_int buf) nd.members)
    (List.rev !order);
  Buffer.to_bytes buf

exception Bad of string

let deserialize blob =
  let pos = ref 0 in
  let rd_int () =
    if !pos + 8 > Bytes.length blob then raise (Bad "guide blob truncated");
    let v = Int64.to_int (Bytes.get_int64_le blob !pos) in
    pos := !pos + 8;
    v
  in
  let rd_string () =
    let len = rd_int () in
    if len < 0 || !pos + len > Bytes.length blob then raise (Bad "corrupt string length in guide blob");
    let s = Bytes.sub_string blob !pos len in
    pos := !pos + len;
    s
  in
  try
    if rd_int () <> magic_int then raise (Bad "bad guide blob magic");
    let ver = rd_int () in
    if ver <> format_version then raise (Bad (Printf.sprintf "unsupported guide format version %d" ver));
    let doc_nodes = rd_int () in
    let n = rd_int () in
    if doc_nodes < 0 || n < 0 || n > max 1 doc_nodes then
      raise (Bad "implausible guide dimensions");
    let t = empty () in
    let summed = ref 0 in
    for i = 0 to n - 1 do
      let parent = rd_int () in
      if parent < -1 || parent >= i then raise (Bad "guide parent out of preorder");
      let kind = match kind_of_code (rd_int ()) with Ok k -> k | Error e -> raise (Bad e) in
      let name = rd_string () in
      let n_members = rd_int () in
      if n_members <= 0 then raise (Bad "empty summary node in guide blob");
      let members = Int_col.create ~capacity:n_members () in
      let prev = ref (-1) in
      for _ = 1 to n_members do
        let v = rd_int () in
        if v <= !prev then raise (Bad "guide member ranks not increasing");
        prev := v;
        Int_col.append_unit members v
      done;
      if !prev >= doc_nodes then raise (Bad "guide member rank out of range");
      summed := !summed + n_members;
      let key = (kind, name) in
      let table = child_table t parent in
      if Hashtbl.mem table key then raise (Bad "duplicate child path in guide blob");
      let g = push_node t { parent; kind; name; members; children = Hashtbl.create 2 } in
      Hashtbl.add table key g
    done;
    if !summed <> doc_nodes then raise (Bad "guide member counts disagree with document size");
    t.doc_nodes <- doc_nodes;
    Ok t
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Testing support                                                     *)
(* ------------------------------------------------------------------ *)

let members_alist t =
  let out = ref [] in
  for g = 0 to t.n_summary - 1 do
    if populated t g then out := (path t g, Int_col.to_array (node t g).members) :: !out
  done;
  List.sort compare !out

let equal a b = a.doc_nodes = b.doc_nodes && members_alist a = members_alist b
