(** Strong dataguide: one summary node per distinct root-to-node path.

    A summary node stands for every document node reachable by the same
    sequence of (kind, name) steps from the root — "/site/people/person"
    is one node no matter how many persons the document holds.  Each
    summary node is annotated with the pre ranks of its path's members
    (count, min/max pre extent derive from it) and a distinct-child map;
    attribute/text/comment children are summary nodes of their own kind.

    Two consumers:

    - the planner ({!Scj_plan.Planner}): matching a structural step
      sequence against the guide yields near-exact cardinalities, and a
      path's member set is a {e path partition} — a fragment view the
      staircase join can scan instead of the whole document table;

    - the store ({!Scj_store.Store}): {!serialize} produces the blob
      persisted as a page-aligned, CRC-trailed extent, so reopening a
      store recovers the guide without rescanning the document.

    Maintenance mirrors {!Scj_stats.Doc_stats.update}: after a
    {!Scj_encoding.Update} splice, member ranks at or beyond the splice
    point are dropped and the spliced tail is replayed — rows below the
    splice keep their pre rank, kind, name and ancestor chain, so their
    summary assignment is untouched.  {!update} is guaranteed (and
    fuzz-tested) to equal {!build} of the new document. *)

module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq

type t

(** One pass over parent/kind/name in preorder (parents precede their
    children, so each row extends an already-summarized path). *)
val build : Doc.t -> t

(** Splice-maintenance across a mutation (see {!Scj_encoding.Update}):
    equivalent to [build doc], at the cost of the spliced tail.
    [old_doc] and [delta] are accepted for signature parity with
    [Doc_stats.update]; the splice point alone determines the work. *)
val update : t -> old_doc:Doc.t -> doc:Doc.t -> splice:int -> delta:int -> t

(** Document rows summarized (the sum of all member counts). *)
val doc_nodes : t -> int

(** Live summary nodes (distinct populated root paths). *)
val n_paths : t -> int

(** {1 Cursors — planner-side path matching}

    A cursor is the set of summary nodes a structural step sequence can
    reach; an empty cursor proves the query region is empty.  The step
    functions mirror the XPath axes the planner propagates exactly. *)

type cursor

val is_empty : cursor -> bool

val cursor_size : cursor -> int

val cursor_union : cursor -> cursor -> cursor

(** The root element's summary node (empty only on an empty guide). *)
val root_cursor : t -> cursor

(** [self_step] keeps the cursor nodes matching (kind, name). *)
val self_step : t -> cursor -> kind:Doc.kind -> name:string -> cursor

(** Distinct children of the cursor matching (kind, name) — the child
    and attribute axes. *)
val child_step : t -> cursor -> kind:Doc.kind -> name:string -> cursor

(** Element descendants (or-self) of the cursor named [name]. *)
val descendant_step : t -> ?or_self:bool -> cursor -> name:string -> cursor

(** Summary ancestors (or-self) of the cursor named [name].  Unlike the
    downward steps this is an {e upper bound}: a node on a prefix path
    need not have a descendant on the full path. *)
val ancestor_step : t -> ?or_self:bool -> cursor -> name:string -> cursor

(** Total member count — exact, member sets of distinct summary nodes
    are disjoint. *)
val card : t -> cursor -> int

(** Root paths of the cursor nodes, sorted ("/site/people/person"). *)
val paths : t -> cursor -> string list

(** Canonical memo key for the cursor's partition ([paths] joined). *)
val cursor_key : t -> cursor -> string

(** The partition: every member pre rank, in document order. *)
val members : t -> cursor -> Nodeseq.t

(** {1 Inspection} *)

type info = {
  path : string;  (** "/site/people/@id" — attributes as "@name" *)
  depth : int;  (** summary-tree depth, root = 0 *)
  kind : Doc.kind;
  label : string;  (** the path's last segment *)
  count : int;  (** member nodes on this path *)
  attrs : int;  (** members of attribute children, summed *)
  min_pre : int;  (** smallest member pre rank *)
  max_pre : int;  (** largest member pre rank *)
  n_children : int;  (** distinct populated child paths *)
}

(** Preorder over the populated summary tree, children in label order. *)
val infos : t -> info list

val pp : Format.formatter -> t -> unit

val to_json : t -> string

(** {1 Persistence} *)

val serialize : t -> Bytes.t

val deserialize : Bytes.t -> (t, string) result

(** {1 Testing support} *)

(** (path, member pre ranks) per populated summary node, sorted by
    path — the canonical form the maintenance fuzz compares. *)
val members_alist : t -> (string * int array) list

val equal : t -> t -> bool
