examples/xmark_suite.mli:
