examples/xmark_queries.ml: Array List Printf Scj_core Scj_encoding Scj_frag Scj_stats Scj_xmlgen Scj_xpath Sys Unix
