examples/axis_explorer.mli:
