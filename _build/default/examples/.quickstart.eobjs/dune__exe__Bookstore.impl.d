examples/bookstore.ml: List Option Printf Scj_encoding Scj_xpath String
