examples/bookstore.mli:
