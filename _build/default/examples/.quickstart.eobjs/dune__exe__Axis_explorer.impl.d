examples/axis_explorer.ml: Format Fun List Printf Scj_core Scj_encoding Scj_stats Scj_xml String
