examples/xmark_suite.ml: Array List Printf Scj_encoding Scj_stats Scj_xmlgen Scj_xpath Sys Unix
