examples/quickstart.ml: Format List Printf Scj_encoding Scj_stats Scj_xpath
