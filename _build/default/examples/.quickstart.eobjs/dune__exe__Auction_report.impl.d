examples/auction_report.ml: Array List Printf Scj_encoding Scj_xmlgen Scj_xpath Scj_xquery String Sys
