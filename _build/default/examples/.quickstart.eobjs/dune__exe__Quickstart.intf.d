examples/quickstart.mli:
