test/test_btree.ml: Alcotest Array Int List Map Printf QCheck QCheck_alcotest Scj_btree Scj_stats
