test/test_xml.ml: Alcotest List QCheck QCheck_alcotest Scj_xml String
