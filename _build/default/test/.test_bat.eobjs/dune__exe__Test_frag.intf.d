test/test_frag.mli:
