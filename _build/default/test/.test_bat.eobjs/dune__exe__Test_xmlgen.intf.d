test/test_xmlgen.mli:
