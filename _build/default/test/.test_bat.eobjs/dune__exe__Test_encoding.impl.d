test/test_encoding.ml: Alcotest Buffer Filename Fun In_channel Int Lazy List Option Out_channel QCheck QCheck_alcotest Scj_encoding Scj_xml Set String Sys Test_support
