test/test_bat.mli:
