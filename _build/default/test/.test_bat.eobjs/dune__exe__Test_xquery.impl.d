test/test_xquery.ml: Alcotest Lazy List QCheck QCheck_alcotest Scj_encoding Scj_xml Scj_xmlgen Scj_xpath Scj_xquery String Test_support
