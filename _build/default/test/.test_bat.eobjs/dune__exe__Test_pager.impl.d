test/test_pager.ml: Alcotest Array Fun Gen Lazy List Printf QCheck QCheck_alcotest Scj_core Scj_encoding Scj_pager Scj_xmlgen Test_support
