test/test_xmlgen.ml: Alcotest Array Digest Hashtbl Lazy List Printf Scj_xml Scj_xmlgen String
