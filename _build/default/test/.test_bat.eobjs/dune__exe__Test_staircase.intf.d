test/test_staircase.mli:
