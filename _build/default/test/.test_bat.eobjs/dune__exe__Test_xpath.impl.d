test/test_xpath.ml: Alcotest Format Lazy List Printf QCheck QCheck_alcotest Scj_core Scj_encoding Scj_stats Scj_xmlgen Scj_xpath String Test_support
