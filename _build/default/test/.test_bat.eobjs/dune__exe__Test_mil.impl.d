test/test_mil.ml: Alcotest Lazy List Printf Scj_core Scj_encoding Scj_mil Scj_stats Scj_xmlgen String Test_support
