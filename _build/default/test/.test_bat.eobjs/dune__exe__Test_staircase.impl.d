test/test_staircase.ml: Alcotest Array Fun Lazy List Printf QCheck QCheck_alcotest Scj_core Scj_encoding Scj_stats Scj_xml Scj_xmlgen Test_support
