test/test_engine.ml: Alcotest Lazy List Printf QCheck QCheck_alcotest Scj_bat Scj_core Scj_encoding Scj_engine Scj_stats Scj_xmlgen String Test_support
