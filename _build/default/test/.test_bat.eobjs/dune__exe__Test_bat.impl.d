test/test_bat.ml: Alcotest Array Gen List QCheck QCheck_alcotest Scj_bat String
