test/test_frag.ml: Alcotest Array Format Lazy List Printf QCheck QCheck_alcotest Scj_core Scj_encoding Scj_frag Scj_stats Scj_xmlgen Test_support
