(* Tests for the MIL-flavored plan language (lib/mil): the paper's §4.4
   experiment programs, replayed against the library. *)

module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Sj = Scj_core.Staircase
module Mil = Scj_mil.Mil

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let doc () = Lazy.force Test_support.paper_doc

let xmark = lazy (Doc.of_tree (Scj_xmlgen.Xmark.generate (Scj_xmlgen.Xmark.config ~scale:0.003 ())))

let run_ok d program =
  match Mil.run d program with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "program failed: %s" e

let run_err d program =
  match Mil.run d program with
  | Ok _ -> Alcotest.failf "expected failure for %S" program
  | Error e -> e

let binding outcome x =
  match List.assoc_opt x outcome.Mil.bindings with
  | Some v -> v
  | None -> Alcotest.failf "no binding for %s" x

let seq_of outcome x =
  match binding outcome x with
  | Mil.Seq s -> s
  | _ -> Alcotest.failf "%s is not a sequence" x

(* ------------------------------------------------------------------ *)
(* the paper's Q2 program                                              *)
(* ------------------------------------------------------------------ *)

let paper_q2 =
  {|r  := root(doc);
    s1 := nametest(staircasejoin_desc(doc, r), "increase");
    s2 := nametest(staircasejoin_anc(doc, s1), "bidder");
    print(count(s2));|}

let test_paper_program_runs () =
  let d = Lazy.force xmark in
  let outcome = run_ok d paper_q2 in
  (* cross-check against direct library calls *)
  let root = Nodeseq.singleton (Doc.root d) in
  let filter tag seq =
    match Doc.tag_symbol d tag with
    | None -> Nodeseq.empty
    | Some sym -> Nodeseq.filter (fun v -> Doc.kind d v = Doc.Element && Doc.tag d v = sym) seq
  in
  let s1 = filter "increase" (Sj.desc d root) in
  let s2 = filter "bidder" (Sj.anc d s1) in
  check_bool "s1 matches" true (Nodeseq.equal s1 (seq_of outcome "s1"));
  check_bool "s2 matches" true (Nodeseq.equal s2 (seq_of outcome "s2"));
  Alcotest.(check (list string))
    "printed the count"
    [ string_of_int (Nodeseq.length s2) ]
    outcome.Mil.printed;
  check_bool "work was recorded" true (Scj_stats.Stats.touched outcome.Mil.stats > 0)

let test_skip_modes_agree () =
  let d = Lazy.force xmark in
  let result mode =
    let program =
      Printf.sprintf
        {|s := staircasejoin_desc(doc, nametest(staircasejoin_desc(doc, root(doc)), "profile"), "%s");
          print(count(s))|}
        mode
    in
    (run_ok d program).Mil.printed
  in
  let reference = result "no-skipping" in
  List.iter
    (fun mode -> Alcotest.(check (list string)) mode reference (result mode))
    [ "skipping"; "estimation"; "exact-size" ]

let test_set_operations () =
  let d = doc () in
  let outcome =
    run_ok d
      {|a := nametest(staircasejoin_desc(doc, root(doc)), "f");
        b := staircasejoin_desc(doc, a);
        u := union(a, b);
        i := intersect(u, b);
        e := difference(b, b)|}
  in
  check_int "a" 1 (Nodeseq.length (seq_of outcome "a"));
  check_int "b = g,h" 2 (Nodeseq.length (seq_of outcome "b"));
  check_int "union" 3 (Nodeseq.length (seq_of outcome "u"));
  check_int "intersect" 2 (Nodeseq.length (seq_of outcome "i"));
  check_int "difference" 0 (Nodeseq.length (seq_of outcome "e"))

let test_fragment_and_kindtest () =
  let d = Lazy.force xmark in
  let outcome =
    run_ok d
      {|f := fragment(doc, "bidder");
        viajoin := nametest(staircasejoin_desc(doc, root(doc)), "bidder");
        same := count(difference(f, viajoin))|}
  in
  check_bool "fragment non-empty" true (Nodeseq.length (seq_of outcome "f") > 0);
  (match binding outcome "same" with
  | Mil.Int 0 -> ()
  | v -> Alcotest.failf "fragment differs from join: %s" (Mil.value_to_string d v));
  let outcome2 =
    run_ok d {|t := kindtest(staircasejoin_desc(doc, root(doc)), "text"); print(empty(t))|}
  in
  Alcotest.(check (list string)) "texts exist" [ "false" ] outcome2.Mil.printed

let test_pruning_primitives () =
  let d = doc () in
  let outcome =
    run_ok d
      {|all := staircasejoin_desc(doc, root(doc));
        p := prune_desc(doc, all)|}
  in
  (* pruning descendants of the full node set keeps only the root's children *)
  check_int "staircase after pruning" 3 (Nodeseq.length (seq_of outcome "p"))

let test_mpmgjn_primitives () =
  let d = Lazy.force xmark in
  let outcome =
    run_ok d
      {|c := nametest(staircasejoin_desc(doc, root(doc)), "increase");
        a := staircasejoin_anc(doc, c);
        b := mpmgjn_anc(doc, c);
        diff := count(difference(a, b))|}
  in
  match binding outcome "diff" with
  | Mil.Int 0 -> ()
  | v -> Alcotest.failf "mpmgjn disagrees: %s" (Mil.value_to_string d v)

let test_stats_and_comments () =
  let d = doc () in
  let outcome =
    run_ok d
      {|# evaluate a step, then report the work
        s := staircasejoin_desc(doc, root(doc), "skipping");
        stats()|}
  in
  check_int "one printed line" 1 (List.length outcome.Mil.printed);
  check_bool "mentions appended" true
    (let s = List.hd outcome.Mil.printed in
     String.length s > 0)

let test_first_last () =
  let d = doc () in
  let outcome = run_ok d {|s := staircasejoin_desc(doc, root(doc)); print(first(s)) print(last(s))|} in
  Alcotest.(check (list string)) "first and last" [ "1"; "9" ] outcome.Mil.printed

let test_errors () =
  let d = doc () in
  let has needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0
  in
  check_bool "unbound" true (has "unbound" (run_err d "print(x)"));
  check_bool "unknown primitive" true (has "unknown primitive" (run_err d "frobnicate()"));
  check_bool "type error" true (has "expected" (run_err d {|count(doc)|}));
  check_bool "bad mode" true
    (has "unknown skip mode" (run_err d {|staircasejoin_desc(doc, root(doc), "warp")|}));
  check_bool "syntax" true (has "MIL error" (run_err d {|a := := b|}));
  check_bool "unterminated string" true (has "unterminated" (run_err d {|print("oops)|}))

let () =
  Alcotest.run "scj_mil"
    [
      ( "programs",
        [
          Alcotest.test_case "paper Q2 program" `Quick test_paper_program_runs;
          Alcotest.test_case "skip modes agree" `Quick test_skip_modes_agree;
          Alcotest.test_case "set operations" `Quick test_set_operations;
          Alcotest.test_case "fragment and kindtest" `Quick test_fragment_and_kindtest;
          Alcotest.test_case "pruning primitives" `Quick test_pruning_primitives;
          Alcotest.test_case "mpmgjn primitives" `Quick test_mpmgjn_primitives;
          Alcotest.test_case "stats and comments" `Quick test_stats_and_comments;
          Alcotest.test_case "first/last" `Quick test_first_last;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
