(* Tests for the XMark-style generator (lib/xmlgen). *)

module Tree = Scj_xml.Tree
module Parser = Scj_xml.Parser
module Printer = Scj_xml.Printer
module Prng = Scj_xmlgen.Prng
module Xmark = Scj_xmlgen.Xmark

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 7L and b = Prng.create 8L in
  check_bool "different streams" true (Prng.next a <> Prng.next b)

let test_prng_ranges () =
  let p = Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Prng.int p 10 in
    check_bool "int in range" true (v >= 0 && v < 10);
    let w = Prng.int_in p 5 7 in
    check_bool "int_in in range" true (w >= 5 && w <= 7);
    let f = Prng.float p in
    check_bool "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_distribution () =
  (* crude uniformity check: each of 10 buckets gets a fair share *)
  let p = Prng.create 99L in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Prng.int p 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < n / 20 || c > n / 5 then Alcotest.failf "bucket %d suspicious: %d of %d" i c n)
    buckets

let test_prng_bool_probability () =
  let p = Prng.create 5L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bool p 0.25 then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int n in
  check_bool "P(true) near 0.25" true (ratio > 0.22 && ratio < 0.28)

let test_prng_geometric_mean () =
  let p = Prng.create 11L in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Prng.geometric p ~p:0.25
  done;
  (* mean of Geometric(0.25) failures-before-success is 3 *)
  let mean = float_of_int !total /. float_of_int n in
  check_bool "mean near 3" true (mean > 2.7 && mean < 3.3)

let test_prng_invalid_args () =
  let p = Prng.create 1L in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int p 0));
  Alcotest.check_raises "empty choice" (Invalid_argument "Prng.choice: empty array") (fun () ->
      ignore (Prng.choice p [||]));
  Alcotest.check_raises "bad p" (Invalid_argument "Prng.geometric: p must be in (0,1]") (fun () ->
      ignore (Prng.geometric p ~p:0.0))

(* ------------------------------------------------------------------ *)
(* generator                                                           *)
(* ------------------------------------------------------------------ *)

let small = Xmark.config ~scale:0.002 ()

let small_doc = lazy (Xmark.generate small)

let test_deterministic () =
  let a = Xmark.generate small and b = Xmark.generate small in
  check_bool "same tree for same config" true (Tree.equal a b);
  let c = Xmark.generate (Xmark.config ~seed:43L ~scale:0.002 ()) in
  check_bool "different seed differs" false (Tree.equal a c)

let test_root_structure () =
  match Lazy.force small_doc with
  | Tree.Element e ->
    Alcotest.(check string) "root" "site" e.Tree.name;
    let names = List.filter_map Tree.name e.Tree.children in
    Alcotest.(check (list string))
      "sections"
      [ "regions"; "categories"; "catgraph"; "people"; "open_auctions"; "closed_auctions" ]
      names
  | _ -> Alcotest.fail "root is not an element"

let test_scaled_counts () =
  let doc = Lazy.force small_doc in
  check_int "persons" (Xmark.scaled small 25500) (Xmark.element_count doc "person");
  check_int "open auctions" (Xmark.scaled small 12000) (Xmark.element_count doc "open_auction");
  check_int "closed auctions" (Xmark.scaled small 3000) (Xmark.element_count doc "closed_auction");
  check_int "items" (Xmark.scaled small 21750) (Xmark.element_count doc "item");
  check_int "categories" (Xmark.scaled small 1000) (Xmark.element_count doc "category")

let test_workload_ratios () =
  (* generated at a larger scale so the ratios have room to converge *)
  let doc = Xmark.generate (Xmark.config ~scale:0.02 ()) in
  let persons = Xmark.element_count doc "person" in
  let profiles = Xmark.element_count doc "profile" in
  let educations = Xmark.element_count doc "education" in
  let auctions = Xmark.element_count doc "open_auction" in
  let bidders = Xmark.element_count doc "bidder" in
  let increases = Xmark.element_count doc "increase" in
  check_int "one increase per bidder" bidders increases;
  let ratio a b = float_of_int a /. float_of_int b in
  check_bool "about half of persons have a profile" true
    (ratio profiles persons > 0.4 && ratio profiles persons < 0.6);
  check_bool "about half of profiles have education" true
    (ratio educations profiles > 0.38 && ratio educations profiles < 0.62);
  check_bool "about 5 bidders per auction" true
    (ratio bidders auctions > 3.5 && ratio bidders auctions < 6.0)

let test_height () =
  let h = Tree.height (Lazy.force small_doc) in
  check_bool (Printf.sprintf "height %d in [8,13]" h) true (h >= 8 && h <= 13)

(* The levels that Q1/Q2 rely on: profile at 3, education at 4, bidder at
   3, increase at 4 (root = level 0). *)
let test_levels () =
  let doc = Lazy.force small_doc in
  let seen = Hashtbl.create 16 in
  let rec walk level = function
    | Tree.Element e ->
      (match Hashtbl.find_opt seen e.Tree.name with
      | Some l -> check_int (Printf.sprintf "level of %s stable" e.Tree.name) l level
      | None -> if List.mem e.Tree.name [ "profile"; "education"; "bidder"; "increase" ] then Hashtbl.add seen e.Tree.name level);
      List.iter (walk (level + 1)) e.Tree.children
    | Tree.Text _ | Tree.Comment _ | Tree.Pi _ -> ()
  in
  walk 0 doc;
  check_int "profile level" 3 (Hashtbl.find seen "profile");
  check_int "education level" 4 (Hashtbl.find seen "education");
  check_int "bidder level" 3 (Hashtbl.find seen "bidder");
  check_int "increase level" 4 (Hashtbl.find seen "increase")

let test_serializes_and_reparses () =
  let doc = Lazy.force small_doc in
  let xml = Printer.to_string ~decl:true doc in
  match Parser.parse_string xml with
  | Ok t -> check_bool "roundtrip" true (Tree.equal t doc)
  | Error e -> Alcotest.failf "generated document does not reparse: %s" (Parser.error_to_string e)

let test_scaling_monotonic () =
  let nodes scale = Tree.node_count (Xmark.generate (Xmark.config ~scale ())) in
  let a = nodes 0.001 and b = nodes 0.004 in
  check_bool "node count grows" true (b > 2 * a)

(* Pin the generator output across releases: experiments cite documents by
   (scale, seed), so the bytes must never drift silently.  If this test
   fails after an intentional generator change, update the hash and note
   the change in EXPERIMENTS.md. *)
let test_snapshot_stability () =
  let doc = Xmark.generate (Xmark.config ~scale:0.001 ()) in
  let xml = Printer.to_string doc in
  Alcotest.(check int) "byte size" 38233 (String.length xml);
  Alcotest.(check string) "digest" "4f67bf682a3e7ea781d3ded6e6a94888" (Digest.to_hex (Digest.string xml))

let test_references_valid () =
  let doc = Lazy.force small_doc in
  let n_persons = Xmark.element_count doc "person" in
  let ok = ref true in
  let rec walk = function
    | Tree.Element e ->
      (if String.equal e.Tree.name "personref" then
         match Tree.attribute e "person" with
         | Some id ->
           let num = int_of_string (String.sub id 6 (String.length id - 6)) in
           if num < 0 || num >= n_persons then ok := false
         | None -> ok := false);
      List.iter walk e.Tree.children
    | Tree.Text _ | Tree.Comment _ | Tree.Pi _ -> ()
  in
  walk doc;
  check_bool "personrefs point at existing persons" true !ok

let () =
  Alcotest.run "scj_xmlgen"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "uniformity" `Quick test_prng_distribution;
          Alcotest.test_case "bool probability" `Quick test_prng_bool_probability;
          Alcotest.test_case "geometric mean" `Quick test_prng_geometric_mean;
          Alcotest.test_case "invalid arguments" `Quick test_prng_invalid_args;
        ] );
      ( "xmark",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "root structure" `Quick test_root_structure;
          Alcotest.test_case "scaled counts" `Quick test_scaled_counts;
          Alcotest.test_case "workload ratios" `Quick test_workload_ratios;
          Alcotest.test_case "document height" `Quick test_height;
          Alcotest.test_case "key element levels" `Quick test_levels;
          Alcotest.test_case "serialize/reparse" `Quick test_serializes_and_reparses;
          Alcotest.test_case "scaling monotonic" `Quick test_scaling_monotonic;
          Alcotest.test_case "snapshot stability" `Quick test_snapshot_stability;
          Alcotest.test_case "references valid" `Quick test_references_valid;
        ] );
    ]
