(* Tests for the XML data model, parser, and serializer (lib/xml). *)

module Tree = Scj_xml.Tree
module Parser = Scj_xml.Parser
module Printer = Scj_xml.Printer

let parse_ok ?strip_ws s =
  match Parser.parse_string ?strip_ws s with
  | Ok t -> t
  | Error e -> Alcotest.failf "unexpected parse error: %s" (Parser.error_to_string e)

let parse_err ?strip_ws s =
  match Parser.parse_string ?strip_ws s with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  | Error e -> e

let tree_testable = Alcotest.testable Tree.pp Tree.equal

let check_tree = Alcotest.check tree_testable

(* ------------------------------------------------------------------ *)
(* data model                                                          *)
(* ------------------------------------------------------------------ *)

let paper_tree =
  (* the 10-node instance of Fig. 1: a(b(c), d?, ...) — we use a
     structurally equivalent shape: a with children b(c,d) e(f(g) h) i(j) *)
  Tree.elem "a"
    [
      Tree.elem "b" [ Tree.elem "c" []; Tree.elem "d" [] ];
      Tree.elem "e" [ Tree.elem "f" [ Tree.elem "g" [] ]; Tree.elem "h" [] ];
      Tree.elem "i" [ Tree.elem "j" [] ];
    ]

let test_node_count () =
  Alcotest.(check int) "10 nodes" 10 (Tree.node_count paper_tree);
  Alcotest.(check int)
    "attributes count as nodes" 3
    (Tree.node_count (Tree.elem ~attributes:[ ("x", "1"); ("y", "2") ] "a" []));
  Alcotest.(check int) "text node" 1 (Tree.node_count (Tree.text "hi"))

let test_height () =
  Alcotest.(check int) "paper tree height" 3 (Tree.height paper_tree);
  Alcotest.(check int) "leaf element" 0 (Tree.height (Tree.elem "a" []));
  Alcotest.(check int) "attr adds one" 1 (Tree.height (Tree.elem ~attributes:[ ("k", "v") ] "a" []));
  Alcotest.(check int) "text leaf" 0 (Tree.height (Tree.text "x"))

let test_string_value () =
  let t =
    Tree.elem "r"
      [ Tree.text "a"; Tree.elem "x" [ Tree.text "b"; Tree.Comment "nope" ]; Tree.text "c" ]
  in
  Alcotest.(check string) "concatenated" "abc" (Tree.string_value t)

let test_attribute_lookup () =
  match Tree.elem ~attributes:[ ("id", "7"); ("class", "x") ] "a" [] with
  | Tree.Element e ->
    Alcotest.(check (option string)) "hit" (Some "7") (Tree.attribute e "id");
    Alcotest.(check (option string)) "miss" None (Tree.attribute e "missing")
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_minimal () =
  check_tree "self closing" (Tree.elem "a" []) (parse_ok "<a/>");
  check_tree "empty pair" (Tree.elem "a" []) (parse_ok "<a></a>");
  check_tree "nested"
    (Tree.elem "a" [ Tree.elem "b" []; Tree.elem "c" [ Tree.elem "d" [] ] ])
    (parse_ok "<a><b/><c><d/></c></a>")

let test_parse_attributes () =
  check_tree "double and single quotes"
    (Tree.elem ~attributes:[ ("x", "1"); ("y", "two") ] "a" [])
    (parse_ok "<a x=\"1\" y='two'/>");
  check_tree "entity in attribute"
    (Tree.elem ~attributes:[ ("t", "a&b<c\"d") ] "a" [])
    (parse_ok "<a t=\"a&amp;b&lt;c&quot;d\"/>")

let test_parse_text_and_entities () =
  check_tree "plain text" (Tree.elem "a" [ Tree.text "hello world" ]) (parse_ok "<a>hello world</a>");
  check_tree "entities"
    (Tree.elem "a" [ Tree.text "x < y & z > 'w' \"v\"" ])
    (parse_ok "<a>x &lt; y &amp; z &gt; &apos;w&apos; &quot;v&quot;</a>");
  check_tree "char refs" (Tree.elem "a" [ Tree.text "AB\xE2\x82\xAC" ]) (parse_ok "<a>&#65;&#x42;&#x20AC;</a>")

let test_parse_mixed_content () =
  check_tree "mixed"
    (Tree.elem "p" [ Tree.text "one "; Tree.elem "b" [ Tree.text "two" ]; Tree.text " three" ])
    (parse_ok "<p>one <b>two</b> three</p>")

let test_parse_comment_pi_cdata () =
  check_tree "comment" (Tree.elem "a" [ Tree.Comment " hi " ]) (parse_ok "<a><!-- hi --></a>");
  check_tree "pi"
    (Tree.elem "a" [ Tree.Pi { target = "php"; data = "echo" } ])
    (parse_ok "<a><?php echo?></a>");
  check_tree "cdata keeps markup"
    (Tree.elem "a" [ Tree.text "<not><xml>&amp;" ])
    (parse_ok "<a><![CDATA[<not><xml>&amp;]]></a>")

let test_parse_bom () =
  check_tree "UTF-8 BOM skipped" (Tree.elem "a" []) (parse_ok "\xEF\xBB\xBF<a/>");
  check_tree "BOM with declaration" (Tree.elem "a" [])
    (parse_ok "\xEF\xBB\xBF<?xml version=\"1.0\"?><a/>")

let test_parse_prolog_doctype () =
  check_tree "declaration and doctype"
    (Tree.elem "a" [])
    (parse_ok "<?xml version=\"1.0\"?>\n<!DOCTYPE a [ <!ELEMENT a EMPTY> ]>\n<a/>");
  check_tree "comment before root" (Tree.elem "a" []) (parse_ok "<!-- leading --><a/>")

let test_strip_ws () =
  check_tree "whitespace kept by default"
    (Tree.elem "a" [ Tree.text "\n  "; Tree.elem "b" []; Tree.text "\n" ])
    (parse_ok "<a>\n  <b/>\n</a>");
  check_tree "whitespace stripped"
    (Tree.elem "a" [ Tree.elem "b" [] ])
    (parse_ok ~strip_ws:true "<a>\n  <b/>\n</a>");
  check_tree "significant text survives stripping"
    (Tree.elem "a" [ Tree.text " x " ])
    (parse_ok ~strip_ws:true "<a> x </a>")

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_parse_errors () =
  let check_msg input fragment =
    let e = parse_err input in
    if not (string_contains ~needle:fragment e.Parser.message) then
      Alcotest.failf "error %S does not mention %S" e.Parser.message fragment
  in
  check_msg "<a><b></a>" "mismatched end tag";
  check_msg "<a>" "unexpected end of input";
  check_msg "<a/><b/>" "more than one root";
  check_msg "just text" "outside the root";
  check_msg "<a>&nope;</a>" "unknown entity";
  check_msg "<a x=1/>" "quoted attribute";
  check_msg "<a x=\"1\" x=\"2\"/>" "duplicate attribute";
  check_msg "<a><!-- unterminated </a>" "missing";
  check_msg "" "no root element"

let test_error_position () =
  let e = parse_err "<a>\n<b></c>\n</a>" in
  Alcotest.(check int) "line" 2 e.Parser.line;
  Alcotest.(check bool) "column sane" true (e.Parser.column > 1)

(* ------------------------------------------------------------------ *)
(* printer                                                             *)
(* ------------------------------------------------------------------ *)

let test_print_basic () =
  Alcotest.(check string) "self-close" "<a/>" (Printer.to_string (Tree.elem "a" []));
  Alcotest.(check string)
    "escaping" "<a x=\"&quot;&amp;\">&lt;&amp;&gt;</a>"
    (Printer.to_string (Tree.elem ~attributes:[ ("x", "\"&") ] "a" [ Tree.text "<&>" ]));
  Alcotest.(check string)
    "declaration" "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>"
    (Printer.to_string ~decl:true (Tree.elem "a" []))

let test_print_parse_roundtrip_fixed () =
  let doc =
    Tree.elem "site"
      [
        Tree.elem ~attributes:[ ("id", "person0") ] "person"
          [ Tree.elem "name" [ Tree.text "J. Doe & Sons <quoted>" ]; Tree.Comment "x" ];
        Tree.Pi { target = "sort"; data = "by=name" };
      ]
  in
  check_tree "roundtrip" doc (parse_ok (Printer.to_string doc))

(* qcheck generator for random trees *)
let name_gen = QCheck.Gen.oneofl [ "a"; "b"; "item"; "x-1"; "ns:t" ]

let text_gen =
  QCheck.Gen.(
    map
      (fun parts -> String.concat "" parts)
      (list_size (int_range 1 4) (oneofl [ "x"; " "; "&"; "<"; ">"; "\""; "'"; "Zürich"; "1" ])))

let tree_gen =
  QCheck.Gen.(
    sized_size (int_bound 5) @@ fix (fun self n ->
        let leaf =
          frequency
            [
              (3, map Tree.text text_gen);
              (1, map (fun s -> Tree.Comment s) (oneofl [ "c"; " note " ]));
              (1, return (Tree.Pi { target = "pi"; data = "d" }));
              (2, map (fun name -> Tree.elem name []) name_gen);
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (1, leaf);
              ( 3,
                map3
                  (fun name attrs children -> Tree.elem ~attributes:attrs name children)
                  name_gen
                  (oneofl [ []; [ ("k", "v&1") ]; [ ("k", "v"); ("l", "w'\"") ] ])
                  (list_size (int_range 0 4) (self (n / 2))) );
            ]))

(* Wrap into a root element so the whole value is a well-formed document;
   merge adjacent text nodes since serialization cannot distinguish them. *)
let rec normalize t =
  match t with
  | Tree.Element e ->
    let children =
      List.fold_right
        (fun c acc ->
          let c = normalize c in
          match (c, acc) with
          | Tree.Text a, Tree.Text b :: rest -> Tree.Text (a ^ b) :: rest
          | c, acc -> c :: acc)
        e.Tree.children []
    in
    let children = List.filter (function Tree.Text "" -> false | _ -> true) children in
    Tree.Element { e with Tree.children }
  | t -> t

let doc_arbitrary =
  QCheck.make
    ~print:(fun t -> Printer.to_string t)
    QCheck.Gen.(map (fun children -> normalize (Tree.elem "root" children)) (list_size (int_bound 5) tree_gen))

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse (print t) = t" doc_arbitrary (fun doc ->
      match Parser.parse_string (Printer.to_string doc) with
      | Ok t -> Tree.equal t doc
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" (Parser.error_to_string e))

let prop_roundtrip_indented =
  QCheck.Test.make ~count:100 ~name:"indented output reparses (modulo whitespace strip)"
    doc_arbitrary (fun doc ->
      (* Only check on documents without significant text: indentation
         inserts whitespace text nodes that stripping must remove again. *)
      let rec textless = function
        | Tree.Text s -> String.trim s = ""
        | Tree.Element e -> List.for_all textless e.Tree.children
        | Tree.Comment _ | Tree.Pi _ -> true
      in
      QCheck.assume (textless doc);
      let rec drop_text t =
        match t with
        | Tree.Element e ->
          Tree.Element
            {
              e with
              Tree.children =
                List.filter_map
                  (fun c -> match c with Tree.Text _ -> None | c -> Some (drop_text c))
                  e.Tree.children;
            }
        | t -> t
      in
      match Parser.parse_string ~strip_ws:true (Printer.to_string ~indent:true doc) with
      | Ok t -> Tree.equal t (drop_text doc)
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" (Parser.error_to_string e))

let prop_node_count_positive =
  QCheck.Test.make ~count:200 ~name:"node_count >= 1 and >= height" doc_arbitrary (fun doc ->
      Tree.node_count doc >= 1 && Tree.node_count doc > Tree.height doc)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_roundtrip_indented; prop_node_count_positive ]

let () =
  Alcotest.run "scj_xml"
    [
      ( "tree",
        [
          Alcotest.test_case "node_count" `Quick test_node_count;
          Alcotest.test_case "height" `Quick test_height;
          Alcotest.test_case "string_value" `Quick test_string_value;
          Alcotest.test_case "attribute lookup" `Quick test_attribute_lookup;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal documents" `Quick test_parse_minimal;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "text and entities" `Quick test_parse_text_and_entities;
          Alcotest.test_case "mixed content" `Quick test_parse_mixed_content;
          Alcotest.test_case "comment/pi/cdata" `Quick test_parse_comment_pi_cdata;
          Alcotest.test_case "prolog and doctype" `Quick test_parse_prolog_doctype;
          Alcotest.test_case "UTF-8 BOM" `Quick test_parse_bom;
          Alcotest.test_case "whitespace stripping" `Quick test_strip_ws;
          Alcotest.test_case "error cases" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_position;
        ] );
      ( "printer",
        [
          Alcotest.test_case "basics" `Quick test_print_basic;
          Alcotest.test_case "fixed roundtrip" `Quick test_print_parse_roundtrip_fixed;
        ] );
      ("properties", qsuite);
    ]
