lib/xmlgen/prng.ml: Array Int64
