lib/xmlgen/prng.mli:
