lib/xmlgen/words.ml: Buffer Prng
