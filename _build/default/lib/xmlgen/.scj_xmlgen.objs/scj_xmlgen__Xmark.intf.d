lib/xmlgen/xmark.mli: Scj_xml
