lib/xmlgen/words.mli: Prng
