lib/xmlgen/xmark.ml: Float List Printf Prng Scj_xml String Words
