let prose =
  [|
    "against"; "age"; "all"; "ancient"; "and"; "arms"; "bare"; "bear"; "beauty"; "bed";
    "being"; "beloved"; "besiege"; "blood"; "brow"; "bud"; "buriest"; "by"; "child"; "cold";
    "content"; "couldst"; "count"; "creatures"; "cruel"; "days"; "decease"; "deep"; "desire";
    "die"; "dig"; "eat"; "else"; "eyes"; "fair"; "famine"; "feel"; "field"; "flame"; "foe";
    "fond"; "forty"; "fresh"; "fuel"; "gaudy"; "gazed"; "glass"; "glutton"; "grave"; "held";
    "her"; "herald"; "his"; "hold"; "how"; "increase"; "lands"; "lies"; "light"; "livery";
    "lusty"; "made"; "make"; "memory"; "might"; "never"; "niggarding"; "now"; "only"; "or";
    "ornament"; "own"; "pity"; "praise"; "proud"; "repair"; "riper"; "rose"; "say"; "self";
    "shall"; "shame"; "small"; "spring"; "spend"; "substantial"; "succession"; "sum"; "sunken";
    "tattered"; "tender"; "the"; "thereby"; "thine"; "this"; "thou"; "thriftless"; "thy";
    "time"; "to"; "tombs"; "treasure"; "trenches"; "where"; "winters"; "within"; "world";
    "worth"; "youth";
  |]

let first_names =
  [|
    "Ada"; "Alan"; "Barbara"; "Boris"; "Carla"; "Chen"; "Dilip"; "Edgar"; "Elena"; "Fatima";
    "Grace"; "Hector"; "Ines"; "Jiro"; "Kofi"; "Leila"; "Magnus"; "Nadia"; "Omar"; "Priya";
    "Quentin"; "Rosa"; "Sven"; "Tarik"; "Uma"; "Viktor"; "Wendy"; "Xavier"; "Yuki"; "Zofia";
  |]

let last_names =
  [|
    "Abiteboul"; "Bancilhon"; "Codd"; "Date"; "Ellis"; "Fagin"; "Gray"; "Hellerstein";
    "Imielinski"; "Jagadish"; "Kossmann"; "Lorie"; "Maier"; "Naughton"; "Ozsu"; "Pirahesh";
    "Quass"; "Ramakrishnan"; "Stonebraker"; "Tsichritzis"; "Ullman"; "Vardi"; "Widom";
    "Xu"; "Yannakakis"; "Zaniolo";
  |]

let countries =
  [|
    "United States"; "Germany"; "Netherlands"; "France"; "Japan"; "Brazil"; "Kenya";
    "Australia"; "Canada"; "India"; "Italy"; "Spain"; "Sweden"; "Poland"; "Mexico";
    "South Africa"; "South Korea"; "Argentina"; "Norway"; "Switzerland";
  |]

let cities =
  [|
    "Berlin"; "Konstanz"; "Enschede"; "Amsterdam"; "Tokyo"; "Nairobi"; "Sydney"; "Toronto";
    "Mumbai"; "Rome"; "Madrid"; "Stockholm"; "Warsaw"; "Oaxaca"; "Cape Town"; "Seoul";
    "Buenos Aires"; "Oslo"; "Zurich"; "Lyon";
  |]

let streets =
  [|
    "Main Street"; "Oak Avenue"; "Lakeview Drive"; "Station Road"; "Market Square";
    "Harbor Lane"; "Mill Road"; "Church Street"; "Park Boulevard"; "River Walk";
  |]

let education_levels = [| "High School"; "College"; "Graduate School"; "Other" |]

let item_adjectives =
  [| "ancient"; "gilded"; "rare"; "tattered"; "pristine"; "curious"; "massive"; "tiny" |]

let item_nouns =
  [| "folio"; "astrolabe"; "tapestry"; "manuscript"; "amphora"; "locket"; "engraving"; "globe" |]

let sentence prng n =
  let buf = Buffer.create (n * 7) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Prng.choice prng prose)
  done;
  Buffer.contents buf
