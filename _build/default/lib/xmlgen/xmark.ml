module Tree = Scj_xml.Tree

type config = { scale : float; seed : int64 }

let config ?(seed = 42L) ~scale () =
  if not (scale > 0.0) then invalid_arg "Xmark.config: scale must be positive";
  { scale; seed }

let base_counts =
  [
    ("categories", 1000);
    ("items", 21750);
    ("persons", 25500);
    ("open_auctions", 12000);
    ("closed_auctions", 3000);
  ]

let base name = List.assoc name base_counts

let scaled cfg base = max 1 (int_of_float (Float.round (float_of_int base *. cfg.scale)))

(* ------------------------------------------------------------------ *)
(* small value generators                                               *)
(* ------------------------------------------------------------------ *)

let money prng lo hi = Printf.sprintf "%d.%02d" (Prng.int_in prng lo hi) (Prng.int prng 100)

let date prng =
  Printf.sprintf "%02d/%02d/%04d" (Prng.int_in prng 1 12) (Prng.int_in prng 1 28)
    (Prng.int_in prng 1998 2003)

let time prng =
  Printf.sprintf "%02d:%02d:%02d" (Prng.int prng 24) (Prng.int prng 60) (Prng.int prng 60)

let person_name prng =
  Prng.choice prng Words.first_names ^ " " ^ Prng.choice prng Words.last_names

let item_name prng =
  Prng.choice prng Words.item_adjectives ^ " " ^ Prng.choice prng Words.item_nouns

let leaf name txt = Tree.elem name [ Tree.text txt ]

(* ------------------------------------------------------------------ *)
(* rich text: text | bold | keyword | emph, and parlist nesting         *)
(* ------------------------------------------------------------------ *)

(* <text> mixed content; markup children push the document height to ~11
   as in the original XMark data. *)
let gen_text prng =
  (* adjacent text nodes are coalesced so that the tree is stable under a
     serialize/parse roundtrip *)
  let pieces = ref [] in
  let push_text s =
    match !pieces with
    | Tree.Text prev :: rest -> pieces := Tree.Text (prev ^ " " ^ s) :: rest
    | _ -> pieces := Tree.text s :: !pieces
  in
  let n = Prng.int_in prng 1 3 in
  for _ = 1 to n do
    push_text (Words.sentence prng (Prng.int_in prng 3 12));
    if Prng.bool prng 0.3 then begin
      let markup = Prng.choice prng [| "bold"; "keyword"; "emph" |] in
      pieces := Tree.elem markup [ Tree.text (Words.sentence prng (Prng.int_in prng 1 3)) ] :: !pieces
    end
  done;
  Tree.elem "text" (List.rev !pieces)

let rec gen_parlist prng depth =
  let n_items = Prng.int_in prng 1 3 in
  let items =
    List.init n_items (fun _ ->
        let body =
          if depth < 2 && Prng.bool prng 0.3 then gen_parlist prng (depth + 1) else gen_text prng
        in
        Tree.elem "listitem" [ body ])
  in
  Tree.elem "parlist" items

let gen_description prng =
  let body = if Prng.bool prng 0.4 then gen_parlist prng 1 else gen_text prng in
  Tree.elem "description" [ body ]

(* ------------------------------------------------------------------ *)
(* entities                                                             *)
(* ------------------------------------------------------------------ *)

let gen_category prng i =
  Tree.elem
    ~attributes:[ ("id", Printf.sprintf "category%d" i) ]
    "category"
    [ leaf "name" (Words.sentence prng 2); gen_description prng ]

let gen_catgraph prng n_categories n_edges =
  let edges =
    List.init n_edges (fun _ ->
        Tree.elem "edge"
          ~attributes:
            [
              ("from", Printf.sprintf "category%d" (Prng.int prng n_categories));
              ("to", Printf.sprintf "category%d" (Prng.int prng n_categories));
            ]
          [])
  in
  Tree.elem "catgraph" edges

let gen_mail prng =
  Tree.elem "mail"
    [
      leaf "from" (person_name prng);
      leaf "to" (person_name prng);
      leaf "date" (date prng);
      gen_text prng;
    ]

let gen_item prng ~n_categories i =
  let n_incat = Prng.int_in prng 1 3 in
  let incategories =
    List.init n_incat (fun _ ->
        Tree.elem "incategory"
          ~attributes:[ ("category", Printf.sprintf "category%d" (Prng.int prng n_categories)) ]
          [])
  in
  let n_mail = Prng.int prng 3 in
  let mailbox = Tree.elem "mailbox" (List.init n_mail (fun _ -> gen_mail prng)) in
  Tree.elem
    ~attributes:[ ("id", Printf.sprintf "item%d" i); ("featured", if Prng.bool prng 0.1 then "yes" else "no") ]
    "item"
    ([
       leaf "location" (Prng.choice prng Words.countries);
       leaf "quantity" (string_of_int (Prng.int_in prng 1 10));
       leaf "name" (item_name prng);
       Tree.elem "payment" [ Tree.text "Creditcard" ];
       gen_description prng;
       Tree.elem "shipping" [ Tree.text "Will ship internationally" ];
     ]
    @ incategories @ [ mailbox ])

(* The probability structure below fixes the paper's workload ratios:
   half the persons have a profile, half of the profiles have an
   education entry (cf. Table 1: 63,793 education under 127,984
   profile for 255,000 persons). *)
let gen_profile prng =
  let interests =
    List.init (Prng.int prng 4) (fun _ ->
        Tree.elem "interest"
          ~attributes:[ ("category", Printf.sprintf "category%d" (Prng.int prng 1000)) ]
          [])
  in
  let education =
    if Prng.bool prng 0.5 then [ leaf "education" (Prng.choice prng Words.education_levels) ]
    else []
  in
  let gender = if Prng.bool prng 0.5 then [ leaf "gender" (if Prng.bool prng 0.5 then "male" else "female") ] else [] in
  let age = if Prng.bool prng 0.5 then [ leaf "age" (string_of_int (Prng.int_in prng 18 80)) ] else [] in
  Tree.elem
    ~attributes:[ ("income", money prng 9_000 100_000) ]
    "profile"
    (interests @ education @ gender @ [ leaf "business" (if Prng.bool prng 0.5 then "Yes" else "No") ] @ age)

let gen_person prng ~n_auctions i =
  let address =
    if Prng.bool prng 0.6 then
      [
        Tree.elem "address"
          [
            leaf "street" (Printf.sprintf "%d %s" (Prng.int_in prng 1 99) (Prng.choice prng Words.streets));
            leaf "city" (Prng.choice prng Words.cities);
            leaf "country" (Prng.choice prng Words.countries);
            leaf "zipcode" (string_of_int (Prng.int_in prng 10000 99999));
          ];
      ]
    else []
  in
  let phone = if Prng.bool prng 0.5 then [ leaf "phone" (Printf.sprintf "+%d (%d) %d" (Prng.int_in prng 1 99) (Prng.int_in prng 100 999) (Prng.int_in prng 1000000 9999999)) ] else [] in
  let homepage = if Prng.bool prng 0.3 then [ leaf "homepage" (Printf.sprintf "http://www.example.com/~person%d" i) ] else [] in
  let creditcard = if Prng.bool prng 0.4 then [ leaf "creditcard" (Printf.sprintf "%04d %04d %04d %04d" (Prng.int prng 10000) (Prng.int prng 10000) (Prng.int prng 10000) (Prng.int prng 10000)) ] else [] in
  let profile = if Prng.bool prng 0.5 then [ gen_profile prng ] else [] in
  let watches =
    if Prng.bool prng 0.3 && n_auctions > 0 then
      [
        Tree.elem "watches"
          (List.init (Prng.int_in prng 1 3) (fun _ ->
               Tree.elem "watch"
                 ~attributes:[ ("open_auction", Printf.sprintf "open_auction%d" (Prng.int prng n_auctions)) ]
                 []));
      ]
    else []
  in
  Tree.elem
    ~attributes:[ ("id", Printf.sprintf "person%d" i) ]
    "person"
    ([ leaf "name" (person_name prng); leaf "emailaddress" (Printf.sprintf "mailto:person%d@example.com" i) ]
    @ phone @ address @ homepage @ creditcard @ profile @ watches)

let gen_bidder prng ~n_persons =
  Tree.elem "bidder"
    [
      leaf "date" (date prng);
      leaf "time" (time prng);
      Tree.elem "personref"
        ~attributes:[ ("person", Printf.sprintf "person%d" (Prng.int prng n_persons)) ]
        [];
      leaf "increase" (money prng 1 50);
    ]

let gen_annotation prng ~n_persons =
  Tree.elem "annotation"
    [
      Tree.elem "author"
        ~attributes:[ ("person", Printf.sprintf "person%d" (Prng.int prng n_persons)) ]
        [];
      gen_description prng;
      leaf "happiness" (string_of_int (Prng.int_in prng 1 10));
    ]

(* Bidder multiplicity: 10% of auctions attract no bidder; the others get
   1 + Geometric(0.22) bidders (mean ≈ 4.5, so ≈5 increase nodes per
   bidding auction — the shape behind Q2's ancestor statistics). *)
let gen_open_auction prng ~n_persons ~n_items i =
  let bidders =
    if Prng.bool prng 0.1 then []
    else List.init (min 20 (1 + Prng.geometric prng ~p:0.22)) (fun _ -> gen_bidder prng ~n_persons)
  in
  let reserve = if Prng.bool prng 0.4 then [ leaf "reserve" (money prng 50 500) ] else [] in
  let privacy = if Prng.bool prng 0.3 then [ leaf "privacy" "Yes" ] else [] in
  Tree.elem
    ~attributes:[ ("id", Printf.sprintf "open_auction%d" i) ]
    "open_auction"
    ([ leaf "initial" (money prng 1 100) ]
    @ reserve @ bidders
    @ [ leaf "current" (money prng 1 1000) ]
    @ privacy
    @ [
        Tree.elem "itemref" ~attributes:[ ("item", Printf.sprintf "item%d" (Prng.int prng n_items)) ] [];
        Tree.elem "seller" ~attributes:[ ("person", Printf.sprintf "person%d" (Prng.int prng n_persons)) ] [];
        gen_annotation prng ~n_persons;
        leaf "quantity" (string_of_int (Prng.int_in prng 1 10));
        leaf "type" (if Prng.bool prng 0.5 then "Regular" else "Featured");
        Tree.elem "interval" [ leaf "start" (date prng); leaf "end" (date prng) ];
      ])

let gen_closed_auction prng ~n_persons ~n_items =
  Tree.elem "closed_auction"
    [
      Tree.elem "seller" ~attributes:[ ("person", Printf.sprintf "person%d" (Prng.int prng n_persons)) ] [];
      Tree.elem "buyer" ~attributes:[ ("person", Printf.sprintf "person%d" (Prng.int prng n_persons)) ] [];
      Tree.elem "itemref" ~attributes:[ ("item", Printf.sprintf "item%d" (Prng.int prng n_items)) ] [];
      leaf "price" (money prng 1 1000);
      leaf "date" (date prng);
      leaf "quantity" (string_of_int (Prng.int_in prng 1 5));
      leaf "type" (if Prng.bool prng 0.5 then "Regular" else "Featured");
      gen_annotation prng ~n_persons;
    ]

(* Region shares of the item population, mirroring XMark. *)
let region_shares =
  [
    ("africa", 0.0253); ("asia", 0.092); ("australia", 0.1011); ("europe", 0.2759);
    ("namerica", 0.4597); ("samerica", 0.046);
  ]

let generate cfg =
  let prng = Prng.create cfg.seed in
  let n_categories = scaled cfg (base "categories") in
  let n_items = scaled cfg (base "items") in
  let n_persons = scaled cfg (base "persons") in
  let n_open = scaled cfg (base "open_auctions") in
  let n_closed = scaled cfg (base "closed_auctions") in
  let n_edges = scaled cfg 3800 in
  let item_counter = ref 0 in
  let regions =
    let remaining = ref n_items in
    let n_regions = List.length region_shares in
    Tree.elem "regions"
      (List.mapi
         (fun idx (region, share) ->
           let count =
             if idx = n_regions - 1 then !remaining
             else
               let c = min !remaining (int_of_float (Float.round (float_of_int n_items *. share))) in
               c
           in
           remaining := !remaining - count;
           Tree.elem region
             (List.init count (fun _ ->
                  let i = !item_counter in
                  incr item_counter;
                  gen_item prng ~n_categories i)))
         region_shares)
  in
  let categories =
    Tree.elem "categories" (List.init n_categories (fun i -> gen_category prng i))
  in
  let catgraph = gen_catgraph prng n_categories n_edges in
  let people = Tree.elem "people" (List.init n_persons (fun i -> gen_person prng ~n_auctions:n_open i)) in
  let open_auctions =
    Tree.elem "open_auctions"
      (List.init n_open (fun i -> gen_open_auction prng ~n_persons ~n_items i))
  in
  let closed_auctions =
    Tree.elem "closed_auctions"
      (List.init n_closed (fun _ -> gen_closed_auction prng ~n_persons ~n_items))
  in
  Tree.elem "site" [ regions; categories; catgraph; people; open_auctions; closed_auctions ]

let element_count tree name =
  let rec walk acc = function
    | Tree.Element e ->
      let acc = if String.equal e.Tree.name name then acc + 1 else acc in
      List.fold_left walk acc e.Tree.children
    | Tree.Text _ | Tree.Comment _ | Tree.Pi _ -> acc
  in
  walk 0 tree
