(** XMark-style auction document generator (re-implementation of XMLgen
    from the XMark benchmark project, which the paper uses as its document
    source).

    The document follows the XMark [site] DTD closely enough that the
    paper's workload properties hold:

    - query Q1's path [/descendant::profile/descendant::education] finds
      [profile] elements at level 3 and [education] at level 4;
    - query Q2's path [/descendant::increase/ancestor::bidder] finds
      [increase] at level 4 with exactly one [bidder] ancestor at level 3,
      where sibling bidders share the [open_auction] ancestor — the source
      of the ≈75 % duplicate ratio in Fig. 11 (a);
    - document height is ≈11 (deep [parlist]/[listitem] nesting inside
      item descriptions), matching the "all documents were of height 11"
      setup of Section 4.4.

    Element and attribute counts scale linearly with the scale factor:
    scale 1.0 corresponds to the original XMark scale 1 (≈ 100 MB of XML).
    Generation is deterministic in (scale, seed). *)

type config = { scale : float; seed : int64 }

(** [config ~scale ()] with the default seed [42L]. *)
val config : ?seed:int64 -> scale:float -> unit -> config

(** Base entity counts at scale 1.0, as (entity, count) pairs:
    categories, items, persons, open_auctions, closed_auctions. *)
val base_counts : (string * int) list

(** [scaled cfg base] is the number of instances to generate for an entity
    with the given base count: [max 1 (round (base *. cfg.scale))]. *)
val scaled : config -> int -> int

(** Generate the [site] document tree. *)
val generate : config -> Scj_xml.Tree.t

(** [element_count t name] counts elements named [name] in [t] — handy for
    workload sanity checks. *)
val element_count : Scj_xml.Tree.t -> string -> int
