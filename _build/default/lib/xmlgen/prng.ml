type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let mix1 = 0xBF58476D1CE4E5B9L

let mix2 = 0x94D049BB133111EBL

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mix1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mix2 in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (next t) land max_int in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t (Array.length arr))

let geometric t ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Prng.geometric: p must be in (0,1]";
  let rec loop n = if bool t p then n else loop (n + 1) in
  loop 0

let split t = create (next t)
