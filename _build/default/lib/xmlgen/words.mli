(** Vocabulary for the XMark-style generator: the original XMLgen drew its
    prose from Shakespeare; we embed a compatible fixed word list plus name
    and location tables. *)

val prose : string array

val first_names : string array

val last_names : string array

val countries : string array

val cities : string array

val streets : string array

val education_levels : string array

val item_adjectives : string array

val item_nouns : string array

(** [sentence prng n] builds an [n]-word lowercase sentence. *)
val sentence : Prng.t -> int -> string
