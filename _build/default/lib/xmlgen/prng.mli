(** Deterministic pseudo-random number generator (SplitMix64).

    Self-contained so that generated XMark documents are bit-identical
    across OCaml versions and platforms — reproducible experiments need
    reproducible inputs. *)

type t

val create : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform-ish in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform-ish in [lo, hi] (inclusive). *)
val int_in : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

(** [choice t arr] picks a uniform element.
    @raise Invalid_argument on an empty array. *)
val choice : t -> 'a array -> 'a

(** [geometric t ~p] counts Bernoulli([p]) failures before the first
    success; mean (1-p)/p.  [p] must be in (0, 1]. *)
val geometric : t -> p:float -> int

(** [split t] derives an independent generator; the parent advances once. *)
val split : t -> t
