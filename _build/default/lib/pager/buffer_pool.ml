module Store = struct
  type t = { data : int array; page_ints : int }

  let create ~page_ints data =
    if page_ints <= 0 then invalid_arg "Buffer_pool.Store.create: page_ints must be positive";
    { data; page_ints }

  let page_ints t = t.page_ints

  let n_pages t = (Array.length t.data + t.page_ints - 1) / t.page_ints

  let length t = Array.length t.data

  (* Simulated disk read: copy the page out of the backing array. *)
  let read_page t page =
    let start = page * t.page_ints in
    let len = min t.page_ints (Array.length t.data - start) in
    Array.sub t.data start len
end

type frame = { page : int; data : int array; mutable last_used : int }

type t = {
  store : Store.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable faults : int;
  mutable evictions : int;
}

let create ~capacity store =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  { store; capacity; frames = Hashtbl.create (2 * capacity); clock = 0; hits = 0; faults = 0; evictions = 0 }

let touch t frame =
  t.clock <- t.clock + 1;
  frame.last_used <- t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ frame acc ->
        match acc with
        | None -> Some frame
        | Some best -> if frame.last_used < best.last_used then Some frame else acc)
      t.frames None
  in
  match victim with
  | None -> ()
  | Some frame ->
    Hashtbl.remove t.frames frame.page;
    t.evictions <- t.evictions + 1

let frame_of_page t page =
  match Hashtbl.find_opt t.frames page with
  | Some frame ->
    t.hits <- t.hits + 1;
    touch t frame;
    frame
  | None ->
    t.faults <- t.faults + 1;
    if Hashtbl.length t.frames >= t.capacity then evict_lru t;
    let frame = { page; data = Store.read_page t.store page; last_used = 0 } in
    touch t frame;
    Hashtbl.replace t.frames page frame;
    frame

let read t i =
  if i < 0 || i >= Store.length t.store then
    invalid_arg (Printf.sprintf "Buffer_pool.read: index %d out of bounds" i);
  let page = i / Store.page_ints t.store in
  let frame = frame_of_page t page in
  frame.data.(i - (page * Store.page_ints t.store))

let resident t = Hashtbl.length t.frames

let is_resident t page = Hashtbl.mem t.frames page

let stats t = (t.hits, t.faults, t.evictions)

let reset_stats t =
  t.hits <- 0;
  t.faults <- 0;
  t.evictions <- 0

let flush t = Hashtbl.reset t.frames
