lib/pager/paged_doc.mli: Buffer_pool Scj_encoding
