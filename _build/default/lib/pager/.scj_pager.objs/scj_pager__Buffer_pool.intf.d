lib/pager/buffer_pool.mli:
