lib/pager/buffer_pool.ml: Array Hashtbl Printf
