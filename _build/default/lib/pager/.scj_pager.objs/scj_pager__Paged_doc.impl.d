lib/pager/paged_doc.ml: Array Buffer_pool Printf Scj_bat Scj_encoding
