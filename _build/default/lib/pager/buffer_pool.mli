(** A buffer pool over a simulated disk of integer pages.

    The paper's staircase join was built into a main-memory kernel; its §6
    future work asks how it behaves in a disk-based RDBMS.  This module
    provides the substrate for that experiment: a fixed-capacity pool of
    page frames with LRU replacement in front of a page store, counting
    hits, faults, and evictions.  The access-pattern contrast — staircase
    join reads pages strictly sequentially, per-context index scans hop
    around — then becomes measurable as fault counts. *)

module Store : sig
  type t

  (** [create ~page_ints data] wraps [data] as a disk of pages holding
      [page_ints] integers each (the last page may be partial).
      @raise Invalid_argument if [page_ints <= 0]. *)
  val create : page_ints:int -> int array -> t

  val page_ints : t -> int

  (** Number of pages. *)
  val n_pages : t -> int

  (** Total number of integers. *)
  val length : t -> int
end

type t

(** [create ~capacity store] — a pool of at most [capacity] resident page
    frames.  @raise Invalid_argument if [capacity <= 0]. *)
val create : capacity:int -> Store.t -> t

(** [read pool i] returns the integer at global index [i], faulting the
    containing page in if needed.
    @raise Invalid_argument when out of bounds. *)
val read : t -> int -> int

(** Number of currently resident pages. *)
val resident : t -> int

(** [is_resident pool page] — without touching LRU state. *)
val is_resident : t -> int -> bool

(** (hits, faults, evictions) since creation or the last {!reset_stats}. *)
val stats : t -> int * int * int

val reset_stats : t -> unit

(** Drop every frame (keeps counters). *)
val flush : t -> unit
