let escape_into buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:false s;
  Buffer.contents buf

let escape_attribute s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:true s;
  Buffer.contents buf

let add_attributes buf attributes =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      escape_into buf ~attr:true v;
      Buffer.add_char buf '"')
    attributes

let rec add_to_buffer buf node =
  match node with
  | Tree.Text s -> escape_into buf ~attr:false s
  | Tree.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Tree.Pi { target; data } ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if data <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf data
    end;
    Buffer.add_string buf "?>"
  | Tree.Element { name; attributes; children } ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    add_attributes buf attributes;
    if children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (add_to_buffer buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end

let rec add_indented buf depth node =
  let pad () =
    for _ = 1 to depth do
      Buffer.add_string buf "  "
    done
  in
  match node with
  | Tree.Element { name; attributes; children } ->
    pad ();
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    add_attributes buf attributes;
    let only_text = List.for_all (function Tree.Text _ -> true | _ -> false) children in
    if children = [] then Buffer.add_string buf "/>\n"
    else if only_text then begin
      Buffer.add_char buf '>';
      List.iter (add_to_buffer buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_string buf ">\n"
    end
    else begin
      Buffer.add_string buf ">\n";
      List.iter (add_indented buf (depth + 1)) children;
      pad ();
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_string buf ">\n"
    end
  | Tree.Text _ | Tree.Comment _ | Tree.Pi _ ->
    pad ();
    add_to_buffer buf node;
    Buffer.add_char buf '\n'

let to_string ?(decl = false) ?(indent = false) t =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  if indent then add_indented buf 0 t else add_to_buffer buf t;
  Buffer.contents buf

let to_file ?decl ?indent path t =
  let oc = open_out_bin path in
  output_string oc (to_string ?decl ?indent t);
  close_out oc
