type t =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

and element = { name : string; attributes : (string * string) list; children : t list }

let elem ?(attributes = []) name children = Element { name; attributes; children }

let text s = Text s

let name = function
  | Element e -> Some e.name
  | Pi { target; _ } -> Some target
  | Text _ | Comment _ -> None

let attribute el k =
  List.find_map (fun (k', v) -> if String.equal k k' then Some v else None) el.attributes

let rec node_count = function
  | Element e ->
    1 + List.length e.attributes + List.fold_left (fun n c -> n + node_count c) 0 e.children
  | Text _ | Comment _ | Pi _ -> 1

let rec height = function
  | Element e ->
    let deepest = List.fold_left (fun h c -> max h (height c)) (-1) e.children in
    let attr_floor = if e.attributes = [] then -1 else 0 in
    1 + max deepest attr_floor |> max 0
  | Text _ | Comment _ | Pi _ -> 0

let string_value node =
  let buf = Buffer.create 64 in
  let rec walk = function
    | Text s -> Buffer.add_string buf s
    | Element e -> List.iter walk e.children
    | Comment _ | Pi _ -> ()
  in
  walk node;
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Text s, Text s' -> String.equal s s'
  | Comment s, Comment s' -> String.equal s s'
  | Pi { target; data }, Pi { target = t'; data = d' } ->
    String.equal target t' && String.equal data d'
  | Element e, Element e' ->
    String.equal e.name e'.name
    && List.length e.attributes = List.length e'.attributes
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && String.equal v v')
         e.attributes e'.attributes
    && List.length e.children = List.length e'.children
    && List.for_all2 equal e.children e'.children
  | (Text _ | Comment _ | Pi _ | Element _), _ -> false

let rec pp ppf = function
  | Text s -> Format.fprintf ppf "Text %S" s
  | Comment s -> Format.fprintf ppf "Comment %S" s
  | Pi { target; data } -> Format.fprintf ppf "Pi (%s, %S)" target data
  | Element e ->
    Format.fprintf ppf "@[<v 2>Element %s%a" e.name
      (fun ppf attrs ->
        List.iter (fun (k, v) -> Format.fprintf ppf "@ @@%s=%S" k v) attrs)
      e.attributes;
    List.iter (fun c -> Format.fprintf ppf "@ %a" pp c) e.children;
    Format.fprintf ppf "@]"
