(** In-memory XML document model.

    The node kinds mirror the XPath data model subset used by the paper
    (Fig. 1): elements, attributes, text, comments, and processing
    instructions.  Namespaces are treated literally (prefixes are part of
    the name), which matches the XPath accelerator's encoding. *)

type t =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

and element = { name : string; attributes : (string * string) list; children : t list }

(** Convenience constructor for elements. *)
val elem : ?attributes:(string * string) list -> string -> t list -> t

val text : string -> t

(** [name node] is the tag name, attribute name, or PI target, and [None]
    for text/comment nodes. *)
val name : t -> string option

(** [attribute el k] is the value of attribute [k], if present. *)
val attribute : element -> string -> string option

(** Total number of XPath nodes in the subtree, counting the node itself
    and its attributes (attributes are nodes in the pre/post plane). *)
val node_count : t -> int

(** Length of the longest path from this node down to a leaf (a lone leaf
    has height 0).  Attributes do not add height. *)
val height : t -> int

(** String-value in the XPath sense: concatenation of all descendant text
    node contents (attributes excluded). *)
val string_value : t -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
