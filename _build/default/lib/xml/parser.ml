type event =
  | Start_element of { name : string; attributes : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

type error = { position : int; line : int; column : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "XML parse error at line %d, column %d: %s" e.line e.column e.message

let error_to_string e = Format.asprintf "%a" pp_error e

exception Parse_error of int * string

type state = { input : string; len : int; mutable pos : int }

let fail st fmt = Format.kasprintf (fun msg -> raise (Parse_error (st.pos, msg))) fmt

let peek st = if st.pos < st.len then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= st.len && String.sub st.input st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st "expected %S" prefix

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while st.pos < st.len && is_space st.input.[st.pos] do
    advance st
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 128

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let read_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | Some c -> fail st "invalid name start character %C" c
  | None -> fail st "unexpected end of input in name");
  while st.pos < st.len && is_name_char st.input.[st.pos] do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Scan until [stop] and return the part before it; consumes [stop]. *)
let read_until st stop =
  let start = st.pos in
  let n = String.length stop in
  let rec search i =
    if i + n > st.len then fail st "unterminated construct: missing %S" stop
    else if String.sub st.input i n = stop then i
    else search (i + 1)
  in
  let hit = search start in
  st.pos <- hit + n;
  String.sub st.input start (hit - start)

let decode_entity st =
  (* called just past '&' *)
  if looking_at st "#x" || looking_at st "#X" then begin
    st.pos <- st.pos + 2;
    let digits = read_until st ";" in
    match int_of_string_opt ("0x" ^ digits) with
    | Some code when code > 0 && code <= 0x10FFFF ->
      let b = Buffer.create 4 in
      Buffer.add_utf_8_uchar b (Uchar.of_int code);
      Buffer.contents b
    | Some _ | None -> fail st "invalid character reference &#x%s;" digits
  end
  else if looking_at st "#" then begin
    advance st;
    let digits = read_until st ";" in
    match int_of_string_opt digits with
    | Some code when code > 0 && code <= 0x10FFFF ->
      let b = Buffer.create 4 in
      Buffer.add_utf_8_uchar b (Uchar.of_int code);
      Buffer.contents b
    | Some _ | None -> fail st "invalid character reference &#%s;" digits
  end
  else
    let name = read_until st ";" in
    match name with
    | "amp" -> "&"
    | "lt" -> "<"
    | "gt" -> ">"
    | "quot" -> "\""
    | "apos" -> "'"
    | _ -> fail st "unknown entity &%s;" name

let read_attribute_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
      advance st;
      q
    | Some c -> fail st "expected quoted attribute value, found %C" c
    | None -> fail st "unexpected end of input in attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote ->
      advance st;
      Buffer.contents buf
    | Some '&' ->
      advance st;
      Buffer.add_string buf (decode_entity st);
      loop ()
    | Some '<' -> fail st "literal '<' in attribute value"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let read_attributes st =
  let rec loop acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
      let name = read_name st in
      skip_space st;
      expect st "=";
      skip_space st;
      let value = read_attribute_value st in
      if List.mem_assoc name acc then fail st "duplicate attribute %s" name;
      loop ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  loop []

let read_text st =
  let buf = Buffer.create 64 in
  let rec loop () =
    match peek st with
    | None | Some '<' -> Buffer.contents buf
    | Some '&' ->
      advance st;
      Buffer.add_string buf (decode_entity st);
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let skip_doctype st =
  (* just past "<!DOCTYPE"; skip to the matching '>' allowing one level of
     internal-subset brackets *)
  let depth = ref 0 in
  let finished = ref false in
  while not !finished do
    match peek st with
    | None -> fail st "unterminated DOCTYPE"
    | Some '[' ->
      incr depth;
      advance st
    | Some ']' ->
      decr depth;
      advance st
    | Some '>' when !depth = 0 ->
      advance st;
      finished := true
    | Some _ -> advance st
  done

let is_blank s =
  let rec loop i = i >= String.length s || (is_space s.[i] && loop (i + 1)) in
  loop 0

let line_column input pos =
  let line = ref 1 and col = ref 1 in
  let limit = min pos (String.length input) in
  for i = 0 to limit - 1 do
    if input.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let utf8_bom = "\xEF\xBB\xBF"

let fold ?(strip_ws = false) input ~init ~f =
  let st = { input; len = String.length input; pos = 0 } in
  if st.len >= 3 && String.sub input 0 3 = utf8_bom then st.pos <- 3;
  let acc = ref init in
  let emit ev = acc := f !acc ev in
  let stack = ref [] in
  let seen_root = ref false in
  try
    let rec document () =
      skip_space st;
      match peek st with
      | None ->
        if not !seen_root then fail st "no root element";
        ()
      | Some '<' -> (
        advance st;
        match peek st with
        | Some '?' ->
          advance st;
          let target = read_name st in
          skip_space st;
          let data = read_until st "?>" in
          if not (String.lowercase_ascii target = "xml") then
            emit (Pi { target; data = String.trim data });
          content_or_document ()
        | Some '!' ->
          advance st;
          if looking_at st "--" then begin
            st.pos <- st.pos + 2;
            let body = read_until st "-->" in
            emit (Comment body);
            content_or_document ()
          end
          else if looking_at st "DOCTYPE" then begin
            st.pos <- st.pos + String.length "DOCTYPE";
            skip_doctype st;
            document ()
          end
          else fail st "unexpected markup declaration"
        | Some c when is_name_start c ->
          if !seen_root && !stack = [] then fail st "document has more than one root element";
          seen_root := true;
          start_element ()
        | Some c -> fail st "unexpected character %C after '<'" c
        | None -> fail st "unexpected end of input after '<'")
      | Some c ->
        if is_space c then document ()
        else fail st "text %C outside the root element" c
    and content_or_document () = if !stack = [] then document () else content ()
    and start_element () =
      let name = read_name st in
      let attributes = read_attributes st in
      skip_space st;
      if looking_at st "/>" then begin
        st.pos <- st.pos + 2;
        emit (Start_element { name; attributes });
        emit (End_element name);
        content_or_document ()
      end
      else begin
        expect st ">";
        emit (Start_element { name; attributes });
        stack := name :: !stack;
        content ()
      end
    and content () =
      match peek st with
      | None -> fail st "unexpected end of input inside <%s>" (List.hd !stack)
      | Some '<' -> (
        advance st;
        match peek st with
        | Some '/' ->
          advance st;
          let name = read_name st in
          skip_space st;
          expect st ">";
          (match !stack with
          | top :: rest ->
            if not (String.equal top name) then
              fail st "mismatched end tag </%s>, expected </%s>" name top;
            stack := rest;
            emit (End_element name)
          | [] -> fail st "unexpected end tag </%s>" name);
          content_or_document ()
        | Some '!' ->
          advance st;
          if looking_at st "--" then begin
            st.pos <- st.pos + 2;
            let body = read_until st "-->" in
            emit (Comment body);
            content ()
          end
          else if looking_at st "[CDATA[" then begin
            st.pos <- st.pos + String.length "[CDATA[";
            let body = read_until st "]]>" in
            if not (strip_ws && is_blank body) then emit (Text body);
            content ()
          end
          else fail st "unexpected markup declaration in content"
        | Some '?' ->
          advance st;
          let target = read_name st in
          skip_space st;
          let data = read_until st "?>" in
          emit (Pi { target; data = String.trim data });
          content ()
        | Some c when is_name_start c -> start_element ()
        | Some c -> fail st "unexpected character %C after '<'" c
        | None -> fail st "unexpected end of input after '<'")
      | Some _ ->
        let txt = read_text st in
        if not (strip_ws && is_blank txt) then emit (Text txt);
        content ()
    in
    document ();
    skip_space st;
    if st.pos < st.len then fail st "trailing content after the root element";
    Ok !acc
  with Parse_error (pos, message) ->
    let line, column = line_column input pos in
    Error { position = pos; line; column; message }

type builder = { children : Tree.t list; pending : (string * (string * string) list * Tree.t list) list }

let parse_string ?strip_ws input =
  let step b ev =
    match ev with
    | Start_element { name; attributes } ->
      { children = []; pending = (name, attributes, b.children) :: b.pending }
    | End_element _ -> (
      match b.pending with
      | (name, attributes, siblings) :: rest ->
        let el = Tree.Element { name; attributes; children = List.rev b.children } in
        { children = el :: siblings; pending = rest }
      | [] -> assert false)
    | Text s -> { b with children = Tree.Text s :: b.children }
    | Comment s -> { b with children = Tree.Comment s :: b.children }
    | Pi { target; data } -> { b with children = Tree.Pi { target; data } :: b.children }
  in
  match fold ?strip_ws input ~init:{ children = []; pending = [] } ~f:step with
  | Error _ as e -> e
  | Ok { children; pending = [] } -> (
    (* the root element is the last Element among top-level nodes *)
    match List.find_opt (function Tree.Element _ -> true | _ -> false) children with
    | Some root -> Ok root
    | None ->
      Error { position = 0; line = 1; column = 1; message = "no root element" })
  | Ok _ -> Error { position = 0; line = 1; column = 1; message = "unbalanced document" }

let parse_file ?strip_ws path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string ?strip_ws content
