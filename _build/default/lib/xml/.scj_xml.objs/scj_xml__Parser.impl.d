lib/xml/parser.ml: Buffer Char Format List String Tree Uchar
