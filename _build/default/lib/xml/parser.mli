(** Non-validating XML parser.

    Supports the features needed for real-world documents and the XMark
    data set: elements, attributes (single or double quoted), text, CDATA
    sections, comments, processing instructions, the XML declaration, a
    skipped DOCTYPE (including an internal subset), the five predefined
    entities and decimal/hexadecimal character references.

    The parser is exposed both as a SAX-style event fold (no tree is
    materialized — this is how large documents are loaded straight into the
    pre/post encoding) and as a tree builder on top of it. *)

type event =
  | Start_element of { name : string; attributes : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

type error = { position : int; line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

(** [fold ?strip_ws input ~init ~f] runs [f] over the document events in
    order.  [strip_ws] (default [false]) drops text events that consist
    only of whitespace — the usual choice when loading data-centric
    documents.  Checks well-formedness (single root, matching tags). *)
val fold : ?strip_ws:bool -> string -> init:'a -> f:('a -> event -> 'a) -> ('a, error) result

(** [parse_string ?strip_ws input] builds the root element's tree. *)
val parse_string : ?strip_ws:bool -> string -> (Tree.t, error) result

(** [parse_file ?strip_ws path] reads and parses a whole file. *)
val parse_file : ?strip_ws:bool -> string -> (Tree.t, error) result
