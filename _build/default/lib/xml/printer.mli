(** XML serializer: the inverse of {!Parser.parse_string}.

    Text and attribute values are escaped so that
    [parse_string (to_string t) = Ok t] for any tree (modulo an optional
    indentation mode that inserts whitespace). *)

(** Escape a string for use as element content ([&], [<], [>]). *)
val escape_text : string -> string

(** Escape a string for use inside a double-quoted attribute value. *)
val escape_attribute : string -> string

(** [add_to_buffer buf t] serializes compactly (no added whitespace). *)
val add_to_buffer : Buffer.t -> Tree.t -> unit

(** [to_string ?decl ?indent t] serializes the tree.  [decl] (default
    [false]) prepends an XML declaration.  [indent] (default [false])
    pretty-prints with two-space indentation — only safe for data-centric
    documents since it adds whitespace text. *)
val to_string : ?decl:bool -> ?indent:bool -> Tree.t -> string

(** [to_file ?decl ?indent path t] writes the serialized tree to a file. *)
val to_file : ?decl:bool -> ?indent:bool -> string -> Tree.t -> unit
