lib/btree/btree.mli: Format Scj_stats
