lib/btree/btree.ml: Array Format Int List Scj_stats
