lib/bat/bat.ml: Format Int_col Printf
