lib/bat/str_col.mli:
