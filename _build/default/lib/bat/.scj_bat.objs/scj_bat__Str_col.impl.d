lib/bat/str_col.ml: Array Printf String
