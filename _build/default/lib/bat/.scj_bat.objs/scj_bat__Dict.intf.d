lib/bat/dict.mli:
