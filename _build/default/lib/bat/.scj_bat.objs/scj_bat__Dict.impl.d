lib/bat/dict.ml: Hashtbl Printf Str_col
