lib/bat/int_col.mli: Format
