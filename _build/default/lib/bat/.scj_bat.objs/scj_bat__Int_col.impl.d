lib/bat/int_col.ml: Array Format Printf
