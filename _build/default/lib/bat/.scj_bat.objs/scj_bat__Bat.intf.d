lib/bat/bat.mli: Format Int_col
