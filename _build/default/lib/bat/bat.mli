(** Monet-style Binary Association Table: a two-column table of
    (head, tail) integer pairs.

    The distinguishing feature reproduced here is the [void] column type — a
    virtual column representing the contiguous sequence [o, o+1, o+2, ...]
    for which only the offset [o] is stored.  The [doc] table of the XPath
    accelerator keeps its preorder ranks in a void head, so positional
    lookup is free and the table costs a single materialized column. *)

type col =
  | Void of int  (** virtual oid column: value at row [i] is [offset + i] *)
  | Ints of Int_col.t  (** materialized integer column *)

type t

(** [make ~head ~tail ~count] builds a BAT of [count] rows.
    @raise Invalid_argument if a materialized column's length differs from
    [count]. *)
val make : head:col -> tail:col -> count:int -> t

(** [of_tail tail] is the common doc-table shape: a void head starting at 0
    over a materialized tail. *)
val of_tail : Int_col.t -> t

val count : t -> int

val head : t -> int -> int

val tail : t -> int -> int

val head_col : t -> col

val tail_col : t -> col

(** [reverse t] swaps head and tail (Monet's [reverse]); O(1). *)
val reverse : t -> t

(** [slice t ~pos ~len] is the row range as a fresh BAT; void columns stay
    void (with an adjusted offset). *)
val slice : t -> pos:int -> len:int -> t

(** [select t ~lo ~hi] returns the (head, tail) pairs whose tail value lies
    in [lo, hi], in row order. *)
val select : t -> lo:int -> hi:int -> t

(** [materialize_head t] forces the head column to a materialized column. *)
val materialize_head : t -> t

val iter : (int -> int -> unit) -> t -> unit

val pp : Format.formatter -> t -> unit
