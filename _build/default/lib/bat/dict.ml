type t = { table : (string, int) Hashtbl.t; names : Str_col.t }

let create () = { table = Hashtbl.create 64; names = Str_col.create () }

let intern t name =
  match Hashtbl.find_opt t.table name with
  | Some sym -> sym
  | None ->
    let sym = Str_col.append t.names name in
    Hashtbl.add t.table name sym;
    sym

let find_opt t name = Hashtbl.find_opt t.table name

let name t sym =
  if sym < 0 || sym >= Str_col.length t.names then
    invalid_arg (Printf.sprintf "Dict.name: unknown symbol %d" sym);
  Str_col.get t.names sym

let size t = Str_col.length t.names

let iter f t = Str_col.iteri f t.names

let equal a b = Str_col.equal a.names b.names
