type col = Void of int | Ints of Int_col.t

type t = { head : col; tail : col; count : int }

let col_length count = function Void _ -> count | Ints c -> Int_col.length c

let make ~head ~tail ~count =
  if count < 0 then invalid_arg "Bat.make: negative count";
  let check name c =
    if col_length count c <> count then
      invalid_arg (Printf.sprintf "Bat.make: %s column length mismatch" name)
  in
  check "head" head;
  check "tail" tail;
  { head; tail; count }

let of_tail tail = make ~head:(Void 0) ~tail:(Ints tail) ~count:(Int_col.length tail)

let count t = t.count

let value c i = match c with Void offset -> offset + i | Ints col -> Int_col.get col i

let head t i =
  if i < 0 || i >= t.count then invalid_arg "Bat.head: row out of bounds";
  value t.head i

let tail t i =
  if i < 0 || i >= t.count then invalid_arg "Bat.tail: row out of bounds";
  value t.tail i

let head_col t = t.head

let tail_col t = t.tail

let reverse t = { head = t.tail; tail = t.head; count = t.count }

let slice_col c ~pos ~len =
  match c with
  | Void offset -> Void (offset + pos)
  | Ints col -> Ints (Int_col.sub col ~pos ~len)

let slice t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.count then invalid_arg "Bat.slice: out of bounds";
  { head = slice_col t.head ~pos ~len; tail = slice_col t.tail ~pos ~len; count = len }

let select t ~lo ~hi =
  let heads = Int_col.create () and tails = Int_col.create () in
  for i = 0 to t.count - 1 do
    let v = value t.tail i in
    if v >= lo && v <= hi then begin
      Int_col.append_unit heads (value t.head i);
      Int_col.append_unit tails v
    end
  done;
  make ~head:(Ints heads) ~tail:(Ints tails) ~count:(Int_col.length heads)

let materialize_head t =
  match t.head with
  | Ints _ -> t
  | Void offset ->
    let col = Int_col.create ~capacity:(max t.count 1) () in
    for i = 0 to t.count - 1 do
      Int_col.append_unit col (offset + i)
    done;
    { t with head = Ints col }

let iter f t =
  for i = 0 to t.count - 1 do
    f (value t.head i) (value t.tail i)
  done

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter (fun h tl -> Format.fprintf ppf "%d -> %d@," h tl) t;
  Format.fprintf ppf "@]"
