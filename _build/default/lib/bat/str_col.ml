type t = { mutable data : string array; mutable len : int }

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity ""; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Str_col.get: index %d out of bounds [0,%d)" i t.len);
  Array.unsafe_get t.data i

let append t s =
  if t.len = Array.length t.data then begin
    let fresh = Array.make (2 * Array.length t.data) "" in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end;
  t.data.(t.len) <- s;
  let i = t.len in
  t.len <- t.len + 1;
  i

let of_array a = { data = Array.copy a; len = Array.length a }

let to_array t = Array.sub t.data 0 t.len

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let equal a b =
  a.len = b.len
  &&
  let rec loop i = i >= a.len || (String.equal a.data.(i) b.data.(i) && loop (i + 1)) in
  loop 0
