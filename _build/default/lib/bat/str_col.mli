(** Growable column of strings (the text/value heap of the document
    encoding).  Same interface discipline as {!Int_col}. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

(** @raise Invalid_argument when out of bounds. *)
val get : t -> int -> string

(** [append col s] adds [s] and returns its index. *)
val append : t -> string -> int

val of_array : string array -> t

val to_array : t -> string array

val iteri : (int -> string -> unit) -> t -> unit

val equal : t -> t -> bool
