(** String interning dictionary: maps names (XML tag names, attribute
    names, PI targets) to dense integer symbols and back.  Symbols are
    assigned in first-seen order starting at 0. *)

type t

val create : unit -> t

(** [intern t name] returns the symbol for [name], allocating one on first
    sight. *)
val intern : t -> string -> int

(** [find_opt t name] is the symbol for [name] if it was interned. *)
val find_opt : t -> string -> int option

(** [name t sym] is the string for symbol [sym].
    @raise Invalid_argument for an unknown symbol. *)
val name : t -> int -> string

(** Number of distinct interned names. *)
val size : t -> int

val iter : (int -> string -> unit) -> t -> unit

val equal : t -> t -> bool
