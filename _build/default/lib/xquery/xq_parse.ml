module T = Scj_xpath.Parse.Tokens
module Xp_ast = Scj_xpath.Ast

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let ( let* ) r f = match r with Ok v -> f v | Error e -> raise (Error e)

let expect st t =
  let* () = T.expect st t in
  ()

let expect_keyword st kw =
  match T.current st with
  | T.Name n when String.equal n kw -> T.advance st
  | t -> fail "expected '%s', found %s" kw (T.token_to_string t)

let variable st =
  expect st T.Dollar;
  match T.current st with
  | T.Name x ->
    T.advance st;
    x
  | t -> fail "expected a variable name after '$', found %s" (T.token_to_string t)

let keywords =
  [ "for"; "let"; "in"; "at"; "where"; "order"; "by"; "ascending"; "descending"; "return"; "if";
    "then"; "else"; "element"; "text"; "div"; "mod"; "and"; "or" ]

let fn_of_name = function
  | "count" -> Some Xq_ast.Count
  | "exists" -> Some Xq_ast.Exists
  | "empty" -> Some Xq_ast.Empty
  | "not" -> Some Xq_ast.Not
  | "string" -> Some Xq_ast.String_fn
  | "number" -> Some Xq_ast.Number_fn
  | "sum" -> Some Xq_ast.Sum
  | "name" -> Some Xq_ast.Name_fn
  | "data" -> Some Xq_ast.Data
  | "concat" -> Some Xq_ast.Concat_fn
  | "distinct-values" -> Some Xq_ast.Distinct_values
  | _ -> None

let rec parse_expr st =
  match T.current st with
  | T.Name ("for" | "let") -> parse_flwor st
  | T.Name "if" when T.peek st 1 = T.Lparen -> parse_if st
  | _ -> parse_or st

and parse_flwor st =
  let rec clauses acc =
    match T.current st with
    | T.Name "for" ->
      T.advance st;
      let rec bindings acc =
        let x = variable st in
        let at =
          match T.current st with
          | T.Name "at" ->
            T.advance st;
            Some (variable st)
          | _ -> None
        in
        expect_keyword st "in";
        let e = parse_or_or_if st in
        let acc = Xq_ast.For (x, at, e) :: acc in
        if T.current st = T.Comma then begin
          T.advance st;
          bindings acc
        end
        else acc
      in
      clauses (bindings acc)
    | T.Name "let" ->
      T.advance st;
      let rec bindings acc =
        let x = variable st in
        expect st T.Assign;
        let e = parse_or_or_if st in
        let acc = Xq_ast.Let (x, e) :: acc in
        if T.current st = T.Comma then begin
          T.advance st;
          bindings acc
        end
        else acc
      in
      clauses (bindings acc)
    | _ -> List.rev acc
  in
  let clauses = clauses [] in
  if clauses = [] then fail "expected a for/let clause";
  let where =
    match T.current st with
    | T.Name "where" ->
      T.advance st;
      Some (parse_or_or_if st)
    | _ -> None
  in
  let order_by =
    match (T.current st, T.peek st 1) with
    | T.Name "order", T.Name "by" ->
      T.advance st;
      T.advance st;
      let key = parse_or_or_if st in
      let direction =
        match T.current st with
        | T.Name "descending" ->
          T.advance st;
          Xq_ast.Descending
        | T.Name "ascending" ->
          T.advance st;
          Xq_ast.Ascending
        | _ -> Xq_ast.Ascending
      in
      Some (key, direction)
    | _ -> None
  in
  expect_keyword st "return";
  let return = parse_expr st in
  Xq_ast.Flwor { Xq_ast.clauses; where; order_by; return }

(* expressions allowed in clause bodies: anything but a bare FLWOR (which
   would swallow the 'return' keyword); parenthesize to nest *)
and parse_or_or_if st =
  match T.current st with
  | T.Name "if" when T.peek st 1 = T.Lparen -> parse_if st
  | _ -> parse_or st

and parse_if st =
  expect_keyword st "if";
  expect st T.Lparen;
  let c = parse_expr st in
  expect st T.Rparen;
  expect_keyword st "then";
  let t = parse_expr st in
  expect_keyword st "else";
  let e = parse_expr st in
  Xq_ast.If (c, t, e)

and parse_or st =
  let left = parse_and st in
  match T.current st with
  | T.Name "or" ->
    T.advance st;
    Xq_ast.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_cmp st in
  match T.current st with
  | T.Name "and" ->
    T.advance st;
    Xq_ast.And (left, parse_and st)
  | _ -> left

and parse_cmp st =
  let left = parse_add st in
  match T.current st with
  | T.Op o ->
    T.advance st;
    let right = parse_add st in
    let cmp =
      match o with
      | "=" -> Xp_ast.Eq
      | "!=" -> Xp_ast.Neq
      | "<" -> Xp_ast.Lt
      | "<=" -> Xp_ast.Le
      | ">" -> Xp_ast.Gt
      | ">=" -> Xp_ast.Ge
      | _ -> fail "unknown comparison %s" o
    in
    Xq_ast.Cmp (cmp, left, right)
  | _ -> left

and parse_add st =
  let rec more left =
    match T.current st with
    | T.Plus ->
      T.advance st;
      more (Xq_ast.Binop (Xq_ast.Add, left, parse_mul st))
    | T.Minus ->
      T.advance st;
      more (Xq_ast.Binop (Xq_ast.Sub, left, parse_mul st))
    | _ -> left
  in
  more (parse_mul st)

and parse_mul st =
  let rec more left =
    match T.current st with
    | T.Star ->
      (* after a complete operand, '*' is multiplication (as in XPath's
         disambiguation rule), never a wildcard *)
      T.advance st;
      more (Xq_ast.Binop (Xq_ast.Mul, left, parse_post st))
    | T.Name "div" ->
      T.advance st;
      more (Xq_ast.Binop (Xq_ast.Div, left, parse_post st))
    | T.Name "mod" ->
      T.advance st;
      more (Xq_ast.Binop (Xq_ast.Mod, left, parse_post st))
    | _ -> left
  in
  more (parse_post st)

and parse_post st =
  let rec loop e =
    match T.current st with
    | T.Slash ->
      T.advance st;
      let* p = T.parse_relative_here st in
      loop (Xq_ast.Apply (e, p))
    | T.Dslash ->
      T.advance st;
      let* p = T.parse_relative_here st in
      let bridge = Xp_ast.step Scj_encoding.Axis.Descendant_or_self (Xp_ast.Kind_test Xp_ast.Any_node) in
      loop (Xq_ast.Apply (e, { p with Xp_ast.steps = bridge :: p.Xp_ast.steps }))
    | _ -> e
  in
  loop (parse_primary st)

and parse_primary st =
  match T.current st with
  | T.Lit s ->
    T.advance st;
    Xq_ast.Literal s
  | T.Num f ->
    T.advance st;
    Xq_ast.Number f
  | T.Dollar -> Xq_ast.Var (variable st)
  | T.Slash | T.Dslash ->
    let* p = T.parse_path_here st in
    Xq_ast.Path p
  | T.Lparen ->
    T.advance st;
    if T.current st = T.Rparen then begin
      T.advance st;
      Xq_ast.Seq []
    end
    else begin
      let first = parse_expr st in
      let rec more acc =
        match T.current st with
        | T.Comma ->
          T.advance st;
          more (parse_expr st :: acc)
        | _ ->
          expect st T.Rparen;
          List.rev acc
      in
      match more [ first ] with [ single ] -> single | several -> Xq_ast.Seq several
    end
  | T.Name "element" -> (
    T.advance st;
    match T.current st with
    | T.Name name ->
      T.advance st;
      expect st T.Lbrace;
      let body = parse_expr st in
      expect st T.Rbrace;
      Xq_ast.Element (name, body)
    | t -> fail "expected an element name, found %s" (T.token_to_string t))
  | T.Name "text" when T.peek st 1 = T.Lbrace ->
    T.advance st;
    expect st T.Lbrace;
    let body = parse_expr st in
    expect st T.Rbrace;
    Xq_ast.Text body
  | T.Name name when T.peek st 1 = T.Lparen && fn_of_name name <> None -> (
    T.advance st;
    expect st T.Lparen;
    let args =
      if T.current st = T.Rparen then []
      else begin
        let rec more acc =
          match T.current st with
          | T.Comma ->
            T.advance st;
            more (parse_expr st :: acc)
          | _ -> List.rev acc
        in
        more [ parse_expr st ]
      end
    in
    expect st T.Rparen;
    match fn_of_name name with
    | Some fn -> Xq_ast.Call (fn, args)
    | None -> assert false)
  | T.Name name when not (List.mem name keywords) ->
    fail "unexpected name '%s' (XQuery-lite paths must start with '/', '//' or a variable)" name
  | t -> fail "expected an expression, found %s" (T.token_to_string t)

let parse input =
  try
    let* st = T.tokenize input in
    let e = parse_expr st in
    (match T.current st with
    | T.Eof -> ()
    | t -> fail "trailing input at %s" (T.token_to_string t));
    Ok e
  with Error msg -> Result.Error (Printf.sprintf "XQuery syntax error: %s" msg)
