(** Evaluator for XQuery-lite over an XPath session.

    Values are item sequences in the XQuery sense: document nodes
    (preorder ranks of the session's document), atomic values, or newly
    constructed trees.  Every embedded path expression is evaluated by
    {!Scj_xpath.Eval} — i.e. with the staircase join under the session's
    strategy — which is precisely the Pathfinder runtime scenario the
    paper was built for: FLWOR iteration computes arbitrary context
    sequences, the axis steps traverse from there.

    Deliberate simplifications (documented divergences from XQuery 1.0):
    no schema types (node atomization yields strings), general comparisons
    compare numerically when either operand is numeric, arithmetic on an
    empty sequence yields the empty sequence, and paths cannot be applied
    to constructed trees. *)

type atom = Str of string | Num of float | Bool of bool

type item =
  | Node of int  (** a node of the session document, by preorder rank *)
  | Atom of atom
  | Tree of Scj_xml.Tree.t  (** a constructed element/text *)

type value = item list

type error = string

(** [eval session expr] evaluates a parsed expression with no variables in
    scope. *)
val eval : Scj_xpath.Eval.session -> Xq_ast.expr -> (value, error) result

(** [run session input] parses and evaluates. *)
val run : Scj_xpath.Eval.session -> string -> (value, error) result

(** [serialize session v] renders the sequence: nodes and constructed
    trees as XML, atoms as their string values, items separated by
    newlines. *)
val serialize : Scj_xpath.Eval.session -> value -> string

(** [atom_to_string a] is the XPath string value of an atom. *)
val atom_to_string : atom -> string
