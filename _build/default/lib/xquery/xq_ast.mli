(** Abstract syntax of XQuery-lite.

    The paper develops the staircase join as the back-end operator for the
    Pathfinder XQuery compiler: "expressions compute arbitrary context
    nodes and then traverse from there" (§2).  This layer reproduces that
    usage scenario with the FLWOR core of XQuery 1.0:

    - [for]/[let] clauses, [where] filters, [return] bodies;
    - path expressions (absolute, or applied to a bound variable) that are
      evaluated by the staircase-join XPath engine;
    - computed element/text constructors;
    - sequences, conditionals, arithmetic, general comparisons, and a few
      core functions.

    Every axis step an XQuery-lite program performs bottoms out in a
    staircase join over the pre/post encoding. *)

type fn =
  | Count
  | Exists
  | Empty
  | Not
  | String_fn
  | Number_fn
  | Sum
  | Name_fn
  | Data  (** atomization *)
  | Concat_fn
  | Distinct_values

type binop = Add | Sub | Mul | Div | Mod

type expr =
  | Literal of string
  | Number of float
  | Var of string
  | Path of Scj_xpath.Ast.path  (** absolute path *)
  | Apply of expr * Scj_xpath.Ast.path  (** [e/relative/path] *)
  | Seq of expr list  (** [(e1, e2, ...)]; [()] is the empty sequence *)
  | Flwor of flwor  (** for/let clauses, where, order by, return *)
  | If of expr * expr * expr
  | Element of string * expr  (** [element name { e }] *)
  | Text of expr  (** [text { e }] *)
  | Call of fn * expr list
  | Binop of binop * expr * expr
  | Cmp of Scj_xpath.Ast.cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr

and flwor = {
  clauses : clause list;
  where : expr option;
  order_by : (expr * order) option;
  return : expr;
}

and order = Ascending | Descending

and clause =
  | For of string * string option * expr
      (** [for $x (at $i)? in e] — the optional positional variable *)
  | Let of string * expr

val fn_name : fn -> string

val pp : Format.formatter -> expr -> unit

val to_string : expr -> string
