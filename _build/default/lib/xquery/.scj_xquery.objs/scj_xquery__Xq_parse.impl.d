lib/xquery/xq_parse.ml: Format List Printf Result Scj_encoding Scj_xpath String Xq_ast
