lib/xquery/xq_parse.mli: Xq_ast
