lib/xquery/xq_ast.mli: Format Scj_xpath
