lib/xquery/xq_ast.ml: Float Format List Scj_xpath
