lib/xquery/xq_eval.ml: Buffer Float Format Hashtbl List Option Result Scj_encoding Scj_xml Scj_xpath String Xq_ast Xq_parse
