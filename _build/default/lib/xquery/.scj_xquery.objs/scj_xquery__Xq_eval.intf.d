lib/xquery/xq_eval.mli: Scj_xml Scj_xpath Xq_ast
