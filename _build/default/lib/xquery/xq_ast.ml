type fn =
  | Count
  | Exists
  | Empty
  | Not
  | String_fn
  | Number_fn
  | Sum
  | Name_fn
  | Data
  | Concat_fn
  | Distinct_values

type binop = Add | Sub | Mul | Div | Mod

type expr =
  | Literal of string
  | Number of float
  | Var of string
  | Path of Scj_xpath.Ast.path
  | Apply of expr * Scj_xpath.Ast.path
  | Seq of expr list
  | Flwor of flwor
  | If of expr * expr * expr
  | Element of string * expr
  | Text of expr
  | Call of fn * expr list
  | Binop of binop * expr * expr
  | Cmp of Scj_xpath.Ast.cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr

and flwor = {
  clauses : clause list;
  where : expr option;
  order_by : (expr * order) option;
  return : expr;
}

and order = Ascending | Descending

and clause = For of string * string option * expr | Let of string * expr

let fn_name = function
  | Count -> "count"
  | Exists -> "exists"
  | Empty -> "empty"
  | Not -> "not"
  | String_fn -> "string"
  | Number_fn -> "number"
  | Sum -> "sum"
  | Name_fn -> "name"
  | Data -> "data"
  | Concat_fn -> "concat"
  | Distinct_values -> "distinct-values"

let binop_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod -> "mod"

let cmp_name = function
  | Scj_xpath.Ast.Eq -> "="
  | Scj_xpath.Ast.Neq -> "!="
  | Scj_xpath.Ast.Lt -> "<"
  | Scj_xpath.Ast.Le -> "<="
  | Scj_xpath.Ast.Gt -> ">"
  | Scj_xpath.Ast.Ge -> ">="

let rec pp ppf = function
  | Literal s -> Format.fprintf ppf "'%s'" s
  | Number f ->
    if Float.is_integer f then Format.fprintf ppf "%d" (int_of_float f)
    else Format.fprintf ppf "%g" f
  | Var x -> Format.fprintf ppf "$%s" x
  | Path p -> Scj_xpath.Ast.pp_path ppf p
  | Apply (e, p) -> Format.fprintf ppf "%a/%a" pp e Scj_xpath.Ast.pp_path p
  | Seq es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      es
  | Flwor { clauses; where; order_by; return } ->
    List.iter
      (fun c ->
        match c with
        | For (x, None, e) -> Format.fprintf ppf "for $%s in %a " x pp e
        | For (x, Some i, e) -> Format.fprintf ppf "for $%s at $%s in %a " x i pp e
        | Let (x, e) -> Format.fprintf ppf "let $%s := %a " x pp e)
      clauses;
    (match where with None -> () | Some w -> Format.fprintf ppf "where %a " pp w);
    (match order_by with
    | None -> ()
    | Some (k, Ascending) -> Format.fprintf ppf "order by %a " pp k
    | Some (k, Descending) -> Format.fprintf ppf "order by %a descending " pp k);
    Format.fprintf ppf "return %a" pp return
  | If (c, t, e) -> Format.fprintf ppf "if (%a) then %a else %a" pp c pp t pp e
  | Element (name, body) -> Format.fprintf ppf "element %s { %a }" name pp body
  | Text body -> Format.fprintf ppf "text { %a }" pp body
  | Call (fn, args) ->
    Format.fprintf ppf "%s(%a)" (fn_name fn)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      args
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp a (cmp_name op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e
