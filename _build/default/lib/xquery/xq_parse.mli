(** Parser for XQuery-lite.

    Grammar (precedence low to high):

    {v
expr     := flwor | if | or
flwor    := (for-clause | let-clause)+ ('where' expr)? 'return' expr
for      := 'for' $x 'in' expr (',' $y 'in' expr)*
let      := 'let' $x ':=' expr (',' $y ':=' expr)*
if       := 'if' '(' expr ')' 'then' expr 'else' expr
or       := and ('or' and)*
and      := cmp ('and' cmp)*
cmp      := add (('='|'!='|'<'|'<='|'>'|'>=') add)?
add      := mul (('+'|'-') mul)*
mul      := post (('*'|'div'|'mod') post)*
post     := primary (('/'|'//') relative-path)*
primary  := literal | number | $x | absolute-path | '(' expr,* ')'
          | 'element' name '{' expr '}' | 'text' '{' expr '}'
          | fn '(' expr,* ')'
    v}

    Embedded paths use the full XPath grammar of {!Scj_xpath.Parse}. *)

val parse : string -> (Xq_ast.expr, string) result
