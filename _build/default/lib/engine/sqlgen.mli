(** The systematic XPath-to-SQL translation of §2.1.

    "The pre/post plane encoding enables an RDBMS to translate XPath path
    expressions to pure SQL queries": a path of [n] region steps becomes a
    self-join of [n] copies of the [doc] table whose join predicates trace
    the axis regions.  The generated text is what a tree-unaware RDBMS
    (the paper's DB2 setup) would execute — the repository's
    {!Sql_plan} is the corresponding physical plan.

    This module renders the SQL for documentation, the CLI's [explain]
    command, and tests; it does not parse SQL back. *)

type step = {
  axis : [ `Ancestor | `Descendant | `Following | `Preceding ];
  name_test : string option;
}

(** [of_steps ?delimiter steps] renders the query for evaluating [steps]
    starting from a context node bound to the placeholders [pre(:ctx)] /
    [post(:ctx)].  With [delimiter] (default [false]) the Equation-(1)
    range restriction of §2.1 (the line-7 predicate, with [:h] standing
    for the document height) is added to descendant steps.

    @raise Invalid_argument on an empty step list. *)
val of_steps : ?delimiter:bool -> step list -> string
