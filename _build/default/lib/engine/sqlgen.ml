type step = {
  axis : [ `Ancestor | `Descendant | `Following | `Preceding ];
  name_test : string option;
}

(* Region predicate between the step input (given as SQL expressions for
   its pre and post rank) and the output table alias [dst]
   (cf. Fig. 2: descendant = lower right quadrant, etc.). *)
let region_predicates ~src_pre ~src_post ~dst axis =
  let p fmt a b = Printf.sprintf fmt a b in
  match axis with
  | `Descendant -> [ p "%s.pre > %s" dst src_pre; p "%s.post < %s" dst src_post ]
  | `Ancestor -> [ p "%s.pre < %s" dst src_pre; p "%s.post > %s" dst src_post ]
  | `Following -> [ p "%s.pre > %s" dst src_pre; p "%s.post > %s" dst src_post ]
  | `Preceding -> [ p "%s.pre < %s" dst src_pre; p "%s.post < %s" dst src_post ]

(* §2.1, line 7: the Equation-(1) delimiter for descendant range scans.
   (The paper prints the second bound as "v2.post >= v1.pre + h"; the
   sound direction for a lower bound is "- h", which is what we emit.) *)
let delimiter_predicates ~src_pre ~src_post ~dst = function
  | `Descendant ->
    [
      Printf.sprintf "%s.pre <= %s + :h" dst src_post;
      Printf.sprintf "%s.post >= %s - :h" dst src_pre;
    ]
  | `Ancestor | `Following | `Preceding -> []

let of_steps ?(delimiter = false) steps =
  if steps = [] then invalid_arg "Sqlgen.of_steps: empty path";
  let n = List.length steps in
  let alias i = Printf.sprintf "v%d" i in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "SELECT DISTINCT %s.pre\n" (alias n));
  let froms = List.init n (fun i -> Printf.sprintf "doc %s" (alias (i + 1))) in
  Buffer.add_string buf ("FROM   " ^ String.concat ", " froms ^ "\n");
  let predicates =
    List.concat
      (List.mapi
         (fun i step ->
           let dst = alias (i + 1) in
           let src_pre, src_post =
             if i = 0 then ("pre(:ctx)", "post(:ctx)")
             else (alias i ^ ".pre", alias i ^ ".post")
           in
           let region = region_predicates ~src_pre ~src_post ~dst step.axis in
           let delim =
             if delimiter then delimiter_predicates ~src_pre ~src_post ~dst step.axis else []
           in
           let name =
             match step.name_test with
             | None -> []
             | Some tag -> [ Printf.sprintf "%s.tag = '%s'" dst tag ]
           in
           region @ delim @ name)
         steps)
  in
  List.iteri
    (fun i p ->
      Buffer.add_string buf (if i = 0 then "WHERE  " else "AND    ");
      Buffer.add_string buf p;
      Buffer.add_char buf '\n')
    predicates;
  Buffer.add_string buf (Printf.sprintf "ORDER BY %s.pre" (alias n));
  Buffer.contents buf
