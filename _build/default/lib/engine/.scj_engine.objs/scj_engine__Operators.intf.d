lib/engine/operators.mli: Scj_bat Scj_encoding Scj_stats
