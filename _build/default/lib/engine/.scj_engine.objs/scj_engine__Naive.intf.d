lib/engine/naive.mli: Scj_encoding Scj_stats
