lib/engine/sqlgen.mli:
