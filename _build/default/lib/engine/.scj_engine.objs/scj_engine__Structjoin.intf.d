lib/engine/structjoin.mli: Scj_encoding Scj_stats
