lib/engine/sql_plan.mli: Scj_encoding Scj_stats
