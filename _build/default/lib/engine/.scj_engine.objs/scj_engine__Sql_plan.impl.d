lib/engine/sql_plan.ml: Array Operators Scj_bat Scj_btree Scj_encoding Scj_stats
