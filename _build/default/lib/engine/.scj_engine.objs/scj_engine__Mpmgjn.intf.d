lib/engine/mpmgjn.mli: Scj_encoding Scj_stats
