lib/engine/operators.ml: Array List Scj_bat Scj_encoding Scj_stats
