lib/engine/naive.ml: Array Operators Scj_bat Scj_encoding Scj_stats
