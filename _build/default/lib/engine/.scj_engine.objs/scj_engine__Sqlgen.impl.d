lib/engine/sqlgen.ml: Buffer List Printf String
