lib/engine/structjoin.ml: Array Hashtbl Operators Scj_bat Scj_encoding Scj_stats
