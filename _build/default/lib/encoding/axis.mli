(** The XPath axes and their region semantics in the pre/post plane.

    For a context node [c], the four partitioning axes carve the plane into
    the rectangular regions of the paper's Fig. 2:

    - [descendant]: pre > pre(c) and post < post(c) (lower right),
    - [ancestor]:   pre < pre(c) and post > post(c) (upper left),
    - [preceding]:  pre < pre(c) and post < post(c) (lower left),
    - [following]:  pre > pre(c) and post > post(c) (upper right).

    All remaining axes are super-/subsets of these regions refined by
    [level]/[parent] predicates [8].  Per the XPath data model, only the
    [attribute] axis yields attribute nodes; every other axis filters them
    out.  The [namespace] axis is accepted but always empty: namespace
    nodes are not materialized by this encoding (prefixes stay part of the
    node name). *)

type t =
  | Ancestor
  | Ancestor_or_self
  | Attribute
  | Child
  | Descendant
  | Descendant_or_self
  | Following
  | Following_sibling
  | Namespace
  | Parent
  | Preceding
  | Preceding_sibling
  | Self

val all : t list

val to_string : t -> string

(** Parses the XPath axis name (e.g. ["ancestor-or-self"]). *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit

(** [in_region doc axis ~context v] decides whether node [v] belongs to
    [context/axis::node()].  This is the executable specification of the
    axis semantics — O(1) per test via the encoding's columns; evaluating a
    whole step with it costs O(n·|context|), which is exactly the naive
    region-query baseline of §3.1. *)
val in_region : Doc.t -> t -> context:int -> int -> bool

(** [reflexive axis] is true for the [-or-self] axes and [Self]. *)
val reflexive : t -> bool
