lib/encoding/axis.ml: Array Doc Format List String
