lib/encoding/doc.mli: Format Scj_bat Scj_xml
