lib/encoding/doc.ml: Array Buffer Format In_channel List Option Printf Scj_bat Scj_xml
