lib/encoding/codec.mli: Doc
