lib/encoding/nodeseq.ml: Array Format Seq
