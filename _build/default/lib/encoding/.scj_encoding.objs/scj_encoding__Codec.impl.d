lib/encoding/codec.ml: Array Bytes Doc Fun Int64 Printf String
