lib/encoding/axis.mli: Doc Format
