lib/encoding/nodeseq.mli: Format
