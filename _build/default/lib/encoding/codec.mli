(** Binary persistence for encoded documents.

    The paper computes the pre/post encoding once at document loading time
    and reuses it across queries; this codec plays that role so the CLI can
    encode a document once ([scj encode]) and run experiments against the
    stored table.  The format is a self-describing little-endian layout
    (magic ["SCJDOC1"]), independent of OCaml's [Marshal]. *)

val magic : string

(** [write_channel oc doc] serializes the full column set. *)
val write_channel : out_channel -> Doc.t -> unit

(** [read_channel ic] loads a document.
    Validates the magic header and re-checks {!Doc.validate} on load. *)
val read_channel : in_channel -> (Doc.t, string) result

val write_file : string -> Doc.t -> unit

val read_file : string -> (Doc.t, string) result
