type t =
  | Ancestor
  | Ancestor_or_self
  | Attribute
  | Child
  | Descendant
  | Descendant_or_self
  | Following
  | Following_sibling
  | Namespace
  | Parent
  | Preceding
  | Preceding_sibling
  | Self

let all =
  [
    Ancestor; Ancestor_or_self; Attribute; Child; Descendant; Descendant_or_self; Following;
    Following_sibling; Namespace; Parent; Preceding; Preceding_sibling; Self;
  ]

let to_string = function
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Attribute -> "attribute"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Following -> "following"
  | Following_sibling -> "following-sibling"
  | Namespace -> "namespace"
  | Parent -> "parent"
  | Preceding -> "preceding"
  | Preceding_sibling -> "preceding-sibling"
  | Self -> "self"

let of_string s = List.find_opt (fun a -> String.equal (to_string a) s) all

let pp ppf a = Format.pp_print_string ppf (to_string a)

let reflexive = function
  | Ancestor_or_self | Descendant_or_self | Self -> true
  | Ancestor | Attribute | Child | Descendant | Following | Following_sibling | Namespace
  | Parent | Preceding | Preceding_sibling ->
    false

let in_region doc axis ~context v =
  let c = context in
  let post = Doc.post_array doc in
  let parent = Doc.parent_array doc in
  let not_attr v = Doc.kind doc v <> Doc.Attribute in
  let strict_desc v = v > c && post.(v) < post.(c) in
  let strict_anc v = v < c && post.(v) > post.(c) in
  match axis with
  | Self -> v = c
  | Descendant -> strict_desc v && not_attr v
  | Descendant_or_self -> v = c || (strict_desc v && not_attr v)
  | Ancestor -> strict_anc v
  | Ancestor_or_self -> v = c || strict_anc v
  | Following -> v > c && post.(v) > post.(c) && not_attr v
  | Preceding -> v < c && post.(v) < post.(c) && not_attr v
  | Child -> parent.(v) = c && not_attr v
  | Parent -> v = parent.(c) && c > 0 && v >= 0
  | Attribute -> parent.(v) = c && Doc.kind doc v = Doc.Attribute
  | Following_sibling -> v > c && parent.(v) = parent.(c) && parent.(c) >= 0 && not_attr v
  | Preceding_sibling -> v < c && parent.(v) = parent.(c) && parent.(c) >= 0 && not_attr v
  | Namespace -> false
