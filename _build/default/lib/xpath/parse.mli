(** Parser for the XPath subset of {!Ast}.

    Accepts the full axis syntax ([ancestor-or-self::node()]) and the
    abbreviations of XPath 1.0:

    - [//]   for [/descendant-or-self::node()/]
    - [@n]   for [attribute::n]
    - [.]    for [self::node()]
    - [..]   for [parent::node()]
    - [name] for [child::name]
    - a bare number predicate [p[3]] for [p[position() = 3]]

    plus top-level unions [p1 | p2]. *)

(** [query s] parses a union of paths. *)
val query : string -> (Ast.query, string) result

(** [path s] parses a single path; unions are rejected. *)
val path : string -> (Ast.path, string) result

(** [path_exn s] is [path] raising [Invalid_argument] — for statically
    known query strings in examples and benchmarks. *)
val path_exn : string -> Ast.path

(** Token-level access to the XPath grammar, for embedding path
    expressions into a host language (the XQuery-lite layer).  The lexer
    also recognizes the host tokens [$], [:=], [{], [}] — the XPath
    grammar itself never accepts them. *)
module Tokens : sig
  type token =
    | Slash
    | Dslash
    | Axis_sep
    | Lbrack
    | Rbrack
    | Lparen
    | Rparen
    | At
    | Pipe
    | Dot
    | Dotdot
    | Star
    | Comma
    | Dollar
    | Assign
    | Lbrace
    | Rbrace
    | Plus
    | Minus
    | Name of string
    | Lit of string
    | Num of float
    | Op of string
    | Eof

  val token_to_string : token -> string

  type state

  (** [tokenize s] lexes the whole input. *)
  val tokenize : string -> (state, string) result

  val current : state -> token

  (** Lookahead [k] tokens past the cursor. *)
  val peek : state -> int -> token

  val advance : state -> unit

  (** [expect st t] consumes [t] or returns an error. *)
  val expect : state -> token -> (unit, string) result

  (** Parse a path starting at the cursor (absolute if it starts with
      [/]), leaving the cursor on the first token after it. *)
  val parse_path_here : state -> (Ast.path, string) result

  (** Parse a relative path (first token must start a step). *)
  val parse_relative_here : state -> (Ast.path, string) result
end
