lib/xpath/eval.mli: Ast Scj_core Scj_encoding Scj_stats
