lib/xpath/parse.ml: Array Ast Format List Printf Result Scj_encoding String
