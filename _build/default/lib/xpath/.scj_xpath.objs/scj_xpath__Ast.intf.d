lib/xpath/ast.mli: Format Scj_encoding
