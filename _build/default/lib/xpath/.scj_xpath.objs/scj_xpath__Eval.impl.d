lib/xpath/eval.ml: Array Ast Buffer Float Format Fun Hashtbl List Option Parse Printf Scj_bat Scj_core Scj_encoding Scj_engine Scj_stats Seq String
