lib/xpath/ast.ml: Float Format List Scj_encoding
