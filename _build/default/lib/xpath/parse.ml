module Axis = Scj_encoding.Axis

type token =
  | Slash
  | Dslash
  | Axis_sep
  | Lbrack
  | Rbrack
  | Lparen
  | Rparen
  | At
  | Pipe
  | Dot
  | Dotdot
  | Star
  | Comma
  | Dollar
  | Assign
  | Lbrace
  | Rbrace
  | Plus
  | Minus
  | Name of string
  | Lit of string
  | Num of float
  | Op of string
  | Eof

let token_to_string = function
  | Slash -> "/"
  | Dslash -> "//"
  | Axis_sep -> "::"
  | Lbrack -> "["
  | Rbrack -> "]"
  | Lparen -> "("
  | Rparen -> ")"
  | At -> "@"
  | Pipe -> "|"
  | Dot -> "."
  | Dotdot -> ".."
  | Star -> "*"
  | Comma -> ","
  | Dollar -> "$"
  | Assign -> ":="
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Plus -> "+"
  | Minus -> "-"
  | Name n -> n
  | Lit s -> Printf.sprintf "'%s'" s
  | Num f -> string_of_float f
  | Op o -> o
  | Eof -> "<end of input>"

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* lexer                                                                *)
(* ------------------------------------------------------------------ *)

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_name_char c = is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let is_digit = function '0' .. '9' -> true | _ -> false

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some input.[!i + k] else None in
  while !i < n do
    let c = input.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '/' ->
      if peek 1 = Some '/' then begin
        push Dslash;
        i := !i + 2
      end
      else begin
        push Slash;
        incr i
      end
    | ':' ->
      if peek 1 = Some ':' then begin
        push Axis_sep;
        i := !i + 2
      end
      else if peek 1 = Some '=' then begin
        push Assign;
        i := !i + 2
      end
      else fail "stray ':' at offset %d" !i
    | '[' ->
      push Lbrack;
      incr i
    | ']' ->
      push Rbrack;
      incr i
    | '(' ->
      push Lparen;
      incr i
    | ')' ->
      push Rparen;
      incr i
    | '@' ->
      push At;
      incr i
    | '|' ->
      push Pipe;
      incr i
    | ',' ->
      push Comma;
      incr i
    | '$' ->
      push Dollar;
      incr i
    | '{' ->
      push Lbrace;
      incr i
    | '}' ->
      push Rbrace;
      incr i
    | '+' ->
      push Plus;
      incr i
    | '-' ->
      push Minus;
      incr i
    | '*' ->
      push Star;
      incr i
    | '.' ->
      if peek 1 = Some '.' then begin
        push Dotdot;
        i := !i + 2
      end
      else if (match peek 1 with Some d when is_digit d -> true | _ -> false) then begin
        (* .5 style number *)
        let start = !i in
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        push (Num (float_of_string ("0" ^ String.sub input start (!i - start))))
      end
      else begin
        push Dot;
        incr i
      end
    | '=' ->
      push (Op "=");
      incr i
    | '!' ->
      if peek 1 = Some '=' then begin
        push (Op "!=");
        i := !i + 2
      end
      else fail "stray '!' at offset %d" !i
    | '<' ->
      if peek 1 = Some '=' then begin
        push (Op "<=");
        i := !i + 2
      end
      else begin
        push (Op "<");
        incr i
      end
    | '>' ->
      if peek 1 = Some '=' then begin
        push (Op ">=");
        i := !i + 2
      end
      else begin
        push (Op ">");
        incr i
      end
    | '\'' | '"' ->
      let quote = c in
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> quote do
        incr j
      done;
      if !j >= n then fail "unterminated string literal at offset %d" !i;
      push (Lit (String.sub input start (!j - start)));
      i := !j + 1
    | d when is_digit d ->
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      if !i < n && input.[!i] = '.' && (match peek 1 with Some d when is_digit d -> true | _ -> false)
      then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      push (Num (float_of_string (String.sub input start (!i - start))))
    | c when is_name_start c ->
      let start = !i in
      let continue = ref true in
      while !continue do
        while !i < n && is_name_char input.[!i] do
          incr i
        done;
        (* a single ':' followed by a name char is a QName separator; a
           double ':' terminates the name (axis separator) *)
        if
          !i < n
          && input.[!i] = ':'
          && (match peek 1 with Some c when is_name_start c -> peek 1 <> None && input.[!i + 1] <> ':' | _ -> false)
        then incr i
        else continue := false
      done;
      push (Name (String.sub input start (!i - start)))
    | c -> fail "unexpected character %C at offset %d" c !i);
    ()
  done;
  push Eof;
  List.rev !tokens |> Array.of_list

(* ------------------------------------------------------------------ *)
(* parser                                                               *)
(* ------------------------------------------------------------------ *)

type state = { tokens : token array; mutable pos : int }

let current st = st.tokens.(st.pos)

let advance st = st.pos <- st.pos + 1

let expect st t =
  if current st = t then advance st
  else fail "expected %s, found %s" (token_to_string t) (token_to_string (current st))

let axis_of_name name =
  match Axis.of_string name with
  | Some axis -> axis
  | None -> fail "unknown axis %s" name

let rec parse_query st =
  let first = parse_path st in
  let rec more acc =
    match current st with
    | Pipe ->
      advance st;
      more (parse_path st :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

and parse_path st =
  match current st with
  | Slash -> (
    advance st;
    match current st with
    | Eof | Rbrack | Rparen | Rbrace | Pipe | Op _ | Comma -> { Ast.absolute = true; steps = [] }
    | _ -> { Ast.absolute = true; steps = parse_relative st })
  | Dslash ->
    advance st;
    let steps = parse_relative st in
    {
      Ast.absolute = true;
      steps = Ast.step Axis.Descendant_or_self (Ast.Kind_test Ast.Any_node) :: steps;
    }
  | _ -> { Ast.absolute = false; steps = parse_relative st }

and parse_relative st =
  let first = parse_step st in
  let rec more acc =
    match current st with
    | Slash ->
      advance st;
      more (parse_step st :: acc)
    | Dslash ->
      advance st;
      let bridge = Ast.step Axis.Descendant_or_self (Ast.Kind_test Ast.Any_node) in
      more (parse_step st :: bridge :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

and parse_step st =
  match current st with
  | Dot ->
    advance st;
    Ast.step Axis.Self (Ast.Kind_test Ast.Any_node)
  | Dotdot ->
    advance st;
    Ast.step Axis.Parent (Ast.Kind_test Ast.Any_node)
  | At ->
    advance st;
    let test = parse_node_test st in
    let predicates = parse_predicates st in
    Ast.step ~predicates Axis.Attribute test
  | Name name when st.tokens.(st.pos + 1) = Axis_sep ->
    advance st;
    advance st;
    let axis = axis_of_name name in
    let test = parse_node_test st in
    let predicates = parse_predicates st in
    Ast.step ~predicates axis test
  | Name _ | Star ->
    let test = parse_node_test st in
    let predicates = parse_predicates st in
    Ast.step ~predicates Axis.Child test
  | t -> fail "expected a step, found %s" (token_to_string t)

and parse_node_test st =
  match current st with
  | Star ->
    advance st;
    Ast.Wildcard
  | Name name when st.tokens.(st.pos + 1) = Lparen -> (
    match name with
    | "node" ->
      advance st;
      expect st Lparen;
      expect st Rparen;
      Ast.Kind_test Ast.Any_node
    | "text" ->
      advance st;
      expect st Lparen;
      expect st Rparen;
      Ast.Kind_test Ast.Text_node
    | "comment" ->
      advance st;
      expect st Lparen;
      expect st Rparen;
      Ast.Kind_test Ast.Comment_node
    | "processing-instruction" -> (
      advance st;
      expect st Lparen;
      match current st with
      | Rparen ->
        advance st;
        Ast.Kind_test (Ast.Pi_node None)
      | Lit target ->
        advance st;
        expect st Rparen;
        Ast.Kind_test (Ast.Pi_node (Some target))
      | t -> fail "expected a PI target literal, found %s" (token_to_string t))
    | _ -> fail "unknown node-kind test %s()" name)
  | Name name ->
    advance st;
    Ast.Name_test name
  | t -> fail "expected a node test, found %s" (token_to_string t)

and parse_predicates st =
  match current st with
  | Lbrack ->
    advance st;
    let e = parse_expr st in
    expect st Rbrack;
    e :: parse_predicates st
  | _ -> []

and parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  match current st with
  | Name "or" ->
    advance st;
    Ast.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_compare st in
  match current st with
  | Name "and" ->
    advance st;
    Ast.And (left, parse_and st)
  | _ -> left

and parse_compare st =
  let left = parse_primary st in
  match current st with
  | Op o ->
    advance st;
    let right = parse_primary st in
    let cmp =
      match o with
      | "=" -> Ast.Eq
      | "!=" -> Ast.Neq
      | "<" -> Ast.Lt
      | "<=" -> Ast.Le
      | ">" -> Ast.Gt
      | ">=" -> Ast.Ge
      | _ -> fail "unknown comparison operator %s" o
    in
    Ast.Compare (cmp, left, right)
  | _ -> left

and parse_primary st =
  match current st with
  | Lit s ->
    advance st;
    Ast.Literal s
  | Num f ->
    advance st;
    Ast.Number f
  | Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Rparen;
    e
  | Name name
    when st.tokens.(st.pos + 1) = Lparen
         && not (List.mem name [ "node"; "text"; "comment"; "processing-instruction" ]) ->
    (* a function call; node-type names fall through to path parsing *)
    advance st;
    parse_function st name
  | Slash | Dslash | Dot | Dotdot | At | Name _ | Star -> Ast.Path_expr (parse_path st)
  | t -> fail "expected an expression, found %s" (token_to_string t)

(* generic argument list: '(' expr (',' expr)* ')' *)
and parse_args st =
  expect st Lparen;
  if current st = Rparen then begin
    advance st;
    []
  end
  else begin
    let rec more acc =
      match current st with
      | Comma ->
        advance st;
        more (parse_expr st :: acc)
      | _ ->
        expect st Rparen;
        List.rev acc
    in
    more [ parse_expr st ]
  end

(* functions whose argument is syntactically a path *)
and parse_path_arg st =
  expect st Lparen;
  let p = parse_path st in
  expect st Rparen;
  p

and parse_opt_path_arg st =
  expect st Lparen;
  if current st = Rparen then begin
    advance st;
    None
  end
  else begin
    let p = parse_path st in
    expect st Rparen;
    Some p
  end

and parse_function st name =
  let arity_error expected got =
    fail "%s() expects %s argument(s), got %d" name expected got
  in
  match name with
  | "count" -> Ast.Count (parse_path_arg st)
  | "sum" -> Ast.Fn_sum (parse_path_arg st)
  | "name" -> Ast.Fn_name (parse_opt_path_arg st)
  | "local-name" -> Ast.Fn_local_name (parse_opt_path_arg st)
  | _ -> (
    let args = parse_args st in
    match (name, args) with
    | "position", [] -> Ast.Position
    | "last", [] -> Ast.Last
    | "not", [ e ] -> Ast.Not e
    | "true", [] -> Ast.Fn_true
    | "false", [] -> Ast.Fn_false
    | "boolean", [ e ] -> Ast.Fn_boolean e
    | "string", [] -> Ast.Fn_string None
    | "string", [ e ] -> Ast.Fn_string (Some e)
    | "number", [] -> Ast.Fn_number None
    | "number", [ e ] -> Ast.Fn_number (Some e)
    | "concat", (_ :: _ :: _ as es) -> Ast.Fn_concat es
    | "contains", [ a; b ] -> Ast.Fn_contains (a, b)
    | "starts-with", [ a; b ] -> Ast.Fn_starts_with (a, b)
    | "substring", [ a; b ] -> Ast.Fn_substring (a, b, None)
    | "substring", [ a; b; c ] -> Ast.Fn_substring (a, b, Some c)
    | "substring-before", [ a; b ] -> Ast.Fn_substring_before (a, b)
    | "substring-after", [ a; b ] -> Ast.Fn_substring_after (a, b)
    | "translate", [ a; b; c ] -> Ast.Fn_translate (a, b, c)
    | "string-length", [] -> Ast.Fn_string_length None
    | "string-length", [ e ] -> Ast.Fn_string_length (Some e)
    | "normalize-space", [] -> Ast.Fn_normalize_space None
    | "normalize-space", [ e ] -> Ast.Fn_normalize_space (Some e)
    | "floor", [ e ] -> Ast.Fn_floor e
    | "ceiling", [ e ] -> Ast.Fn_ceiling e
    | "round", [ e ] -> Ast.Fn_round e
    | ("position" | "last" | "true" | "false"), args -> arity_error "no" (List.length args)
    | ("not" | "boolean" | "floor" | "ceiling" | "round"), args ->
      arity_error "exactly 1" (List.length args)
    | ("contains" | "starts-with" | "substring-before" | "substring-after"), args ->
      arity_error "exactly 2" (List.length args)
    | "translate", args -> arity_error "exactly 3" (List.length args)
    | "substring", args -> arity_error "2 or 3" (List.length args)
    | ("string" | "number" | "string-length" | "normalize-space"), args ->
      arity_error "0 or 1" (List.length args)
    | "concat", args -> arity_error "at least 2" (List.length args)
    | _, _ -> fail "unknown function %s()" name)

let run parser_fn input =
  try
    let st = { tokens = tokenize input; pos = 0 } in
    let result = parser_fn st in
    (match current st with
    | Eof -> ()
    | t -> fail "trailing input starting at %s" (token_to_string t));
    Ok result
  with Error msg -> Result.Error (Printf.sprintf "XPath syntax error: %s" msg)

let query input = run parse_query input

let path input =
  match run parse_query input with
  | Ok [ p ] -> Ok p
  | Ok _ -> Result.Error "XPath syntax error: union not allowed here"
  | Error _ as e -> e

let path_exn input =
  match path input with Ok p -> p | Error e -> invalid_arg ("Parse.path_exn: " ^ e)


(* ------------------------------------------------------------------ *)
(* token-level embedding API                                            *)
(* ------------------------------------------------------------------ *)

module Tokens = struct
  type nonrec token = token =
    | Slash
    | Dslash
    | Axis_sep
    | Lbrack
    | Rbrack
    | Lparen
    | Rparen
    | At
    | Pipe
    | Dot
    | Dotdot
    | Star
    | Comma
    | Dollar
    | Assign
    | Lbrace
    | Rbrace
    | Plus
    | Minus
    | Name of string
    | Lit of string
    | Num of float
    | Op of string
    | Eof

  let token_to_string = token_to_string

  type nonrec state = state

  let tokenize input =
    try Ok { tokens = tokenize input; pos = 0 }
    with Error msg -> Result.Error (Printf.sprintf "syntax error: %s" msg)

  let current = current

  let peek st k =
    let i = st.pos + k in
    if i < Array.length st.tokens then st.tokens.(i) else Eof

  let advance = advance

  let expect st t =
    try Ok (expect st t) with Error msg -> Result.Error (Printf.sprintf "syntax error: %s" msg)

  let parse_path_here st =
    try Ok (parse_path st) with Error msg -> Result.Error (Printf.sprintf "syntax error: %s" msg)

  let parse_relative_here st =
    try Ok { Ast.absolute = false; steps = parse_relative st }
    with Error msg -> Result.Error (Printf.sprintf "syntax error: %s" msg)
end
