module Axis = Scj_encoding.Axis

type kind_test = Any_node | Text_node | Comment_node | Pi_node of string option

type node_test = Name_test of string | Wildcard | Kind_test of kind_test

type expr =
  | Path_expr of path
  | Literal of string
  | Number of float
  | Position
  | Last
  | Count of path
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Compare of cmp * expr * expr
  | Fn_string of expr option
  | Fn_number of expr option
  | Fn_boolean of expr
  | Fn_true
  | Fn_false
  | Fn_name of path option
  | Fn_local_name of path option
  | Fn_concat of expr list
  | Fn_contains of expr * expr
  | Fn_starts_with of expr * expr
  | Fn_substring of expr * expr * expr option
  | Fn_substring_before of expr * expr
  | Fn_substring_after of expr * expr
  | Fn_translate of expr * expr * expr
  | Fn_string_length of expr option
  | Fn_normalize_space of expr option
  | Fn_sum of path
  | Fn_floor of expr
  | Fn_ceiling of expr
  | Fn_round of expr

and cmp = Eq | Neq | Lt | Le | Gt | Ge

and step = { axis : Axis.t; test : node_test; predicates : expr list }

and path = { absolute : bool; steps : step list }

type query = path list

(* Does the expression mention position() or last() anywhere? *)
let rec mentions_position = function
  | Position | Last -> true
  | Number _ | Path_expr _ | Literal _ | Count _ | Fn_true | Fn_false | Fn_name _
  | Fn_local_name _ | Fn_sum _ ->
    false
  | Not e | Fn_boolean e | Fn_floor e | Fn_ceiling e | Fn_round e -> mentions_position e
  | Fn_string e | Fn_number e | Fn_string_length e | Fn_normalize_space e -> (
    match e with None -> false | Some e -> mentions_position e)
  | Fn_concat es -> List.exists mentions_position es
  | Fn_contains (a, b) | Fn_starts_with (a, b) | Fn_substring_before (a, b)
  | Fn_substring_after (a, b) ->
    mentions_position a || mentions_position b
  | Fn_translate (a, b, c) -> mentions_position a || mentions_position b || mentions_position c
  | Fn_substring (a, b, c) ->
    mentions_position a || mentions_position b
    || (match c with None -> false | Some c -> mentions_position c)
  | And (a, b) | Or (a, b) | Compare (_, a, b) -> mentions_position a || mentions_position b

(* A predicate whose value is a number is compared against the context
   position (XPath 1.0 §2.4) — so any number-valued top-level expression
   is positional, while a numeric literal nested inside a comparison is
   just a number. *)
let yields_number = function
  | Number _ | Count _ | Position | Last | Fn_number _ | Fn_sum _ | Fn_string_length _
  | Fn_floor _ | Fn_ceiling _ | Fn_round _ ->
    true
  | Path_expr _ | Literal _ | Not _ | And _ | Or _ | Compare _ | Fn_string _ | Fn_boolean _
  | Fn_true | Fn_false | Fn_name _ | Fn_local_name _ | Fn_concat _ | Fn_contains _
  | Fn_starts_with _ | Fn_substring _ | Fn_substring_before _ | Fn_substring_after _
  | Fn_translate _ | Fn_normalize_space _ ->
    false

let positional e = yields_number e || mentions_position e

let step ?(predicates = []) axis test = { axis; test; predicates }

let pp_kind_test ppf = function
  | Any_node -> Format.pp_print_string ppf "node()"
  | Text_node -> Format.pp_print_string ppf "text()"
  | Comment_node -> Format.pp_print_string ppf "comment()"
  | Pi_node None -> Format.pp_print_string ppf "processing-instruction()"
  | Pi_node (Some t) -> Format.fprintf ppf "processing-instruction('%s')" t

let pp_node_test ppf = function
  | Name_test n -> Format.pp_print_string ppf n
  | Wildcard -> Format.pp_print_char ppf '*'
  | Kind_test k -> pp_kind_test ppf k

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Path_expr p -> pp_path ppf p
  | Literal s -> Format.fprintf ppf "'%s'" s
  | Number f ->
    if Float.is_integer f then Format.fprintf ppf "%d" (int_of_float f)
    else Format.fprintf ppf "%g" f
  | Position -> Format.pp_print_string ppf "position()"
  | Last -> Format.pp_print_string ppf "last()"
  | Count p -> Format.fprintf ppf "count(%a)" pp_path p
  | Not e -> Format.fprintf ppf "not(%a)" pp_expr e
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_expr a pp_expr b
  | Compare (c, a, b) -> Format.fprintf ppf "%a %s %a" pp_expr a (cmp_to_string c) pp_expr b
  | Fn_string e -> pp_fn_opt ppf "string" e
  | Fn_number e -> pp_fn_opt ppf "number" e
  | Fn_boolean e -> Format.fprintf ppf "boolean(%a)" pp_expr e
  | Fn_true -> Format.pp_print_string ppf "true()"
  | Fn_false -> Format.pp_print_string ppf "false()"
  | Fn_name p -> pp_fn_path_opt ppf "name" p
  | Fn_local_name p -> pp_fn_path_opt ppf "local-name" p
  | Fn_concat es ->
    Format.fprintf ppf "concat(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_expr)
      es
  | Fn_contains (a, b) -> Format.fprintf ppf "contains(%a, %a)" pp_expr a pp_expr b
  | Fn_starts_with (a, b) -> Format.fprintf ppf "starts-with(%a, %a)" pp_expr a pp_expr b
  | Fn_substring (a, b, None) -> Format.fprintf ppf "substring(%a, %a)" pp_expr a pp_expr b
  | Fn_substring (a, b, Some c) ->
    Format.fprintf ppf "substring(%a, %a, %a)" pp_expr a pp_expr b pp_expr c
  | Fn_substring_before (a, b) ->
    Format.fprintf ppf "substring-before(%a, %a)" pp_expr a pp_expr b
  | Fn_substring_after (a, b) ->
    Format.fprintf ppf "substring-after(%a, %a)" pp_expr a pp_expr b
  | Fn_translate (a, b, c) ->
    Format.fprintf ppf "translate(%a, %a, %a)" pp_expr a pp_expr b pp_expr c
  | Fn_string_length e -> pp_fn_opt ppf "string-length" e
  | Fn_normalize_space e -> pp_fn_opt ppf "normalize-space" e
  | Fn_sum p -> Format.fprintf ppf "sum(%a)" pp_path p
  | Fn_floor e -> Format.fprintf ppf "floor(%a)" pp_expr e
  | Fn_ceiling e -> Format.fprintf ppf "ceiling(%a)" pp_expr e
  | Fn_round e -> Format.fprintf ppf "round(%a)" pp_expr e

and pp_fn_opt ppf name = function
  | None -> Format.fprintf ppf "%s()" name
  | Some e -> Format.fprintf ppf "%s(%a)" name pp_expr e

and pp_fn_path_opt ppf name = function
  | None -> Format.fprintf ppf "%s()" name
  | Some p -> Format.fprintf ppf "%s(%a)" name pp_path p

and pp_step ppf s =
  Format.fprintf ppf "%s::%a" (Axis.to_string s.axis) pp_node_test s.test;
  List.iter (fun p -> Format.fprintf ppf "[%a]" pp_expr p) s.predicates

and pp_path ppf p =
  if p.absolute then Format.pp_print_char ppf '/';
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '/')
    pp_step ppf p.steps

let pp_query ppf q =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") pp_path ppf q

let path_to_string p = Format.asprintf "%a" pp_path p
