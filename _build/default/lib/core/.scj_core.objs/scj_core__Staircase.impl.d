lib/core/staircase.ml: Array List Scj_bat Scj_encoding Scj_stats
