lib/core/staircase.mli: Scj_encoding Scj_stats
