(** Instrumentation counters shared by every axis-step algorithm.

    The experiments of the paper (Fig. 11 (a), (c)) are stated in terms of
    node counts: how many document nodes an algorithm touched, how many it
    copied without a comparison, how many it skipped, how many duplicates a
    tree-unaware algorithm generated.  Every algorithm in this repository
    threads an optional [t] through its inner loops and bumps these
    counters, so that benches and tests can observe the exact work done. *)

type t = {
  mutable scanned : int;
      (** Nodes touched by a sequential scan and subjected to a comparison. *)
  mutable copied : int;
      (** Nodes copied to the result without any comparison
          (estimation-based skipping copy phase). *)
  mutable skipped : int;
      (** Nodes skipped over, i.e. never touched at all. *)
  mutable appended : int;  (** Nodes appended to a result sequence. *)
  mutable compared : int;  (** Key comparisons (joins, B-trees). *)
  mutable index_probes : int;  (** B-tree descents from the root. *)
  mutable index_nodes : int;  (** B-tree pages (nodes) visited. *)
  mutable duplicates : int;
      (** Duplicate result tuples produced (before duplicate removal). *)
  mutable sorted : int;  (** Tuples fed into an explicit sort. *)
  mutable pruned : int;  (** Context nodes removed by pruning. *)
}

val create : unit -> t

val reset : t -> unit

(** [add dst src] accumulates [src]'s counters into [dst]. *)
val add : t -> t -> unit

val copy : t -> t

(** Total document nodes touched in any way ([scanned] + [copied]). *)
val touched : t -> int

val pp : Format.formatter -> t -> unit

(** [to_assoc t] lists the non-zero counters with their names, in a fixed
    order; convenient for CSV-ish bench output. *)
val to_assoc : t -> (string * int) list
