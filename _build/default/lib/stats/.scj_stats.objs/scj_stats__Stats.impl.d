lib/stats/stats.ml: Format List
