(** A MIL-flavored plan language.

    The paper runs its experiments as Monet Interpreter Language programs;
    §4.4 shows query Q2 evaluated as

    {v
r  := root(doc);
s1 := nametest(staircasejoin_desc(doc, r), "increase");
s2 := nametest(staircasejoin_anc(doc, s1), "bidder");
print(count(s2));
    v}

    This module interprets exactly that style of program against an
    encoded document, so the paper's plans can be replayed verbatim — and
    varied: every staircase-join primitive takes an optional skip-mode
    flag, the baseline joins are exposed alongside, and [stats()] reads
    the work counters accumulated so far.

    {2 Values}

    documents, node sequences, integers, strings, booleans.

    {2 Primitives}

    - [root(doc)] — singleton sequence of the root's preorder rank
    - [staircasejoin_desc(doc, seq [, "no-skipping"|"skipping"|"estimation"|"exact-size"])]
    - [staircasejoin_anc(doc, seq [, mode])]
    - [staircasejoin_following(doc, seq)], [staircasejoin_prec(doc, seq)]
    - [prune_desc(doc, seq)], [prune_anc(doc, seq)]
    - [mpmgjn_desc(doc, seq)], [mpmgjn_anc(doc, seq)] — the §5 baseline
    - [nametest(seq, "tag")] — keep elements named [tag]
    - [kindtest(seq, "element"|"attribute"|"text"|"comment"|"pi")]
    - [fragment(doc, "tag")] — the tag-name fragment as a sequence (§6)
    - [union(seq, seq)], [intersect(seq, seq)], [difference(seq, seq)]
    - [count(seq)], [empty(seq)], [first(seq)], [last(seq)]
    - [print(v)] — append the rendered value to the output
    - [stats()] — render the work counters accumulated so far

    A program is a sequence of [var := expr;] bindings and expression
    statements ([;] after a statement is optional).  [doc] is bound to the
    loaded document. *)

type value =
  | Document
  | Seq of Scj_encoding.Nodeseq.t
  | Int of int
  | Str of string
  | Bool of bool

val value_to_string : Scj_encoding.Doc.t -> value -> string

type outcome = {
  bindings : (string * value) list;  (** final environment, binding order *)
  printed : string list;  (** output of [print]/[stats], in order *)
  stats : Scj_stats.Stats.t;  (** work accumulated by all primitives *)
}

(** [run doc program] parses and executes [program]. *)
val run : Scj_encoding.Doc.t -> string -> (outcome, string) result
