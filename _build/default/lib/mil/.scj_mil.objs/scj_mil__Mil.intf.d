lib/mil/mil.mli: Scj_encoding Scj_stats
