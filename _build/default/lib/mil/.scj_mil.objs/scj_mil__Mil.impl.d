lib/mil/mil.ml: Array Format List Printf Result Scj_core Scj_encoding Scj_engine Scj_frag Scj_stats String
