module Doc = Scj_encoding.Doc
module Nodeseq = Scj_encoding.Nodeseq
module Int_col = Scj_bat.Int_col
module Sj = Scj_core.Staircase

(* Evaluate one descendant partition into a private buffer. *)
let scan_desc_partition ~mode ~posts ~sizes ~kinds (p : Sj.partition) out =
  let append i = if kinds.(i) <> Doc.Attribute then Int_col.append_unit out i in
  let boundary = p.Sj.boundary_post in
  let c = p.Sj.scan_from - 1 in
  match mode with
  | Sj.No_skipping ->
    for i = p.Sj.scan_from to p.Sj.scan_to do
      if posts.(i) < boundary then append i
    done
  | Sj.Skipping | Sj.Estimation ->
    let copy_to = if mode = Sj.Estimation then min p.Sj.scan_to boundary else c in
    for i = p.Sj.scan_from to copy_to do
      append i
    done;
    let i = ref (max p.Sj.scan_from (copy_to + 1)) in
    let break = ref false in
    while (not !break) && !i <= p.Sj.scan_to do
      if posts.(!i) < boundary then begin
        append !i;
        incr i
      end
      else break := true
    done
  | Sj.Exact_size ->
    let copy_to = min p.Sj.scan_to (c + sizes.(c)) in
    for i = p.Sj.scan_from to copy_to do
      append i
    done

let scan_anc_partition ~mode ~posts ~sizes (p : Sj.partition) out =
  let boundary = p.Sj.boundary_post in
  let i = ref p.Sj.scan_from in
  while !i <= p.Sj.scan_to do
    if posts.(!i) > boundary then begin
      Int_col.append_unit out !i;
      incr i
    end
    else begin
      let hop =
        match mode with
        | Sj.No_skipping -> 0
        | Sj.Skipping | Sj.Estimation -> max 0 (posts.(!i) - !i)
        | Sj.Exact_size -> sizes.(!i)
      in
      i := !i + min hop (p.Sj.scan_to - !i) + 1
    end
  done

let run_partitions scan partitions domains =
  let parts = Array.of_list partitions in
  let n = Array.length parts in
  if n = 0 then Nodeseq.empty
  else begin
    let workers = max 1 (min domains n) in
    (* static round-robin-free chunking: worker w owns a contiguous slice
       of partitions so its output is a contiguous slice of the result *)
    let slice w =
      let per = n / workers and extra = n mod workers in
      let start = (w * per) + min w extra in
      let len = per + if w < extra then 1 else 0 in
      (start, len)
    in
    let work w =
      let start, len = slice w in
      let out = Int_col.create ~capacity:256 () in
      for k = start to start + len - 1 do
        scan parts.(k) out
      done;
      out
    in
    let results =
      if workers = 1 then [| work 0 |]
      else begin
        let handles = Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> work (w + 1))) in
        let first = work 0 in
        Array.append [| first |] (Array.map Domain.join handles)
      end
    in
    let total = Array.fold_left (fun acc c -> acc + Int_col.length c) 0 results in
    let out = Array.make total 0 in
    let pos = ref 0 in
    Array.iter
      (fun col ->
        let a = Int_col.to_array col in
        Array.blit a 0 out !pos (Array.length a);
        pos := !pos + Array.length a)
      results;
    Nodeseq.of_sorted_array out
  end

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

let desc ?domains ?(mode = Sj.Estimation) doc context =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let partitions = Sj.desc_partitions doc context in
  let posts = Doc.post_array doc in
  let sizes = Doc.size_array doc in
  let kinds = Doc.kind_array doc in
  run_partitions (scan_desc_partition ~mode ~posts ~sizes ~kinds) partitions domains

let anc ?domains ?(mode = Sj.Estimation) doc context =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let partitions = Sj.anc_partitions doc context in
  let posts = Doc.post_array doc in
  let sizes = Doc.size_array doc in
  run_partitions (scan_anc_partition ~mode ~posts ~sizes) partitions domains
