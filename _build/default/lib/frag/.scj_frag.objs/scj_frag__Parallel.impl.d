lib/frag/parallel.ml: Array Domain Scj_bat Scj_core Scj_encoding
