lib/frag/fragmented.ml: Array Hashtbl List Scj_bat Scj_core Scj_encoding
