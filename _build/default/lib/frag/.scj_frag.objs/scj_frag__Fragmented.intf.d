lib/frag/fragmented.mli: Scj_core Scj_encoding Scj_stats
