lib/frag/parallel.mli: Scj_core Scj_encoding
