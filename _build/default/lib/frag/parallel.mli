(** Partition-parallel staircase join.

    The staircase partitions of Fig. 8 "separate the ancestor-or-self
    paths in the document tree", and the paper observes (§3.2, §6) that the
    partitioned pre/post plane naturally leads to a parallel XPath
    execution strategy: each partition can be scanned by an independent
    worker, and because partitions are disjoint, ascending pre ranges, the
    concatenated per-partition outputs are already in document order.

    This module realizes that strategy with OCaml 5 domains.  Workers share
    the read-only encoding columns; each one owns its result buffer. *)

(** [desc ?domains ?mode doc context] — like {!Scj_core.Staircase.desc},
    evaluated by [domains] workers (default: [Domain.recommended_domain_count],
    capped by the number of partitions). *)
val desc :
  ?domains:int ->
  ?mode:Scj_core.Staircase.skip_mode ->
  Scj_encoding.Doc.t ->
  Scj_encoding.Nodeseq.t ->
  Scj_encoding.Nodeseq.t

(** [anc ?domains ?mode doc context] — parallel ancestor join. *)
val anc :
  ?domains:int ->
  ?mode:Scj_core.Staircase.skip_mode ->
  Scj_encoding.Doc.t ->
  Scj_encoding.Nodeseq.t ->
  Scj_encoding.Nodeseq.t
